//! The machine: an IR interpreter over the split memory model.
//!
//! The machine executes a (possibly instrumented) [`Module`] with:
//!
//! * an explicit in-memory image of stack frames — return addresses and
//!   stack objects live at real simulated addresses, so buffer overflows
//!   corrupt them exactly as on x86-64,
//! * the safe region (safe stacks + safe pointer store) reachable only
//!   through instrumented operations, enforced per the configured
//!   isolation model (§3.2.3),
//! * a deterministic cycle/cache cost model producing the overhead
//!   numbers for the evaluation harness,
//! * attack goals: addresses that terminate the run with
//!   [`Trap::Hijacked`] when control reaches them.

mod attacker;
mod bytecode;
mod control;
mod cpi;
mod exec;
mod intrinsics;

use std::collections::HashMap;

use levee_bc::FrameDesc;
use levee_ir::prelude::*;
use levee_rt::{Entry, FastHash, MetaId, MetaMark, MetaTable, PtrStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cache::Cache;
use crate::config::{Engine, Isolation, PacMode, ResetMode, VmConfig};
use crate::heap::Heap;
use crate::layout::{self, Layout};
use crate::mem::{MemError, Memory};
use crate::probe::{touch_addrs, ProfileReport, Profiler, TouchKind, TouchRecord};
use crate::stats::{ExecStats, ResetStats};
use crate::trap::{ExitStatus, GoalKind, Trap};

pub use attacker::{AttackerError, GuessOutcome};

/// A runtime value: a 64-bit word plus an interned based-on handle.
///
/// Metadata rides along in virtual registers (the analogue of
/// SoftBound's shadow registers); whether it is ever *stored*, *loaded*
/// or *checked* is decided entirely by the instrumentation in the code.
///
/// The metadata itself lives once in the machine's [`MetaTable`] —
/// mirroring the paper's safe-region split, where pointer metadata never
/// travels through the regular data path — so a value is 16 bytes
/// instead of the 48 an inline `Option<Entry>` needed, and register
/// files, argument lists and frame copies move 3× less memory.
///
/// Invariant: whenever `meta` is live, the interned record describes the
/// object this word is *based on*; its `value` field is normalized away
/// (the current pointer word is `raw`). The handle travels end-to-end:
/// the safe pointer store's compact slots (`levee_rt::Slot`) carry the
/// same `(word, MetaId)` pair, so `ptr_store`/`ptr_load` move handles
/// with no `Entry` materialization or re-interning on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V {
    /// The raw word.
    pub raw: u64,
    /// Handle to the based-on metadata, or [`MetaId::NONE`] for plain
    /// integers.
    pub meta: MetaId,
}

impl V {
    /// An integer value with no provenance.
    #[inline(always)]
    pub fn int(raw: u64) -> Self {
        V {
            raw,
            meta: MetaId::NONE,
        }
    }
}

/// Marker value used as the return address of `main`.
pub(crate) const MAIN_RET_SENTINEL: u64 = 0x0000_dead_0000;

/// The address bits of a PAC-sealed word: every simulated address fits
/// in 48 bits (see [`crate::layout`]), leaving the high 16 for the MAC
/// tag — the x86-64 canonical-address gap ARM PAC also exploits.
pub const PAC_PTR_MASK: u64 = (1 << 48) - 1;

/// One round of splitmix64 — the keyed mixer behind the modeled MAC.
/// Not cryptographic (neither is QARMA at 16 bits); what matters for
/// the evaluation is that tags are key- and context-dependent and that
/// guessing succeeds with probability `2^-tag_bits`.
#[inline]
pub(crate) fn pac_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One activation record. The *memory image* of the return address (and
/// cookie) is what attacks corrupt; the Rust-side fields carry
/// bookkeeping the hardware would keep in registers.
///
/// Frames are pushed from a precomputed [`FrameDesc`] (register-file
/// size, cookie/return-slot layout, epilogue checks), which the frame
/// carries so the return path never re-derives protection state from
/// the IR.
pub(crate) struct Frame {
    pub func: FuncId,
    pub block: BlockId,
    pub ip: usize,
    pub regs: Vec<V>,
    /// The callee's precomputed frame descriptor.
    pub desc: FrameDesc,
    /// Address of the return-address slot in (regular or safe) memory;
    /// `desc.safestack` says which stack it lives on.
    pub ret_slot: u64,
    /// The value pushed at call time (for divergence detection only —
    /// the *loaded* value is what gets used).
    pub expected_ret: u64,
    /// Address of the stack cookie slot (0 when the function has none —
    /// stack slots are never at address zero).
    pub cookie_slot: u64,
    pub saved_sp: u64,
    pub saved_unsafe_sp: u64,
    pub saved_safe_sp: u64,
    /// Register in the *caller* receiving the return value.
    pub caller_dest: Option<ValueId>,
}

/// A live `setjmp` context.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SetjmpCtx {
    pub frame_depth: usize,
    pub block: BlockId,
    pub ip: usize,
    pub dest: Option<ValueId>,
    pub saved_sp: u64,
    pub saved_unsafe_sp: u64,
    pub saved_safe_sp: u64,
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// How the run ended.
    pub status: ExitStatus,
    /// Cycle/cache/instrumentation counters.
    pub stats: ExecStats,
    /// Program output (`print_int` / `print_str`), newline-joined.
    pub output: String,
}

impl RunOutcome {
    /// Exit code if the run exited cleanly.
    pub fn exit_code(&self) -> Option<i64> {
        match self.status {
            ExitStatus::Exited(c) => Some(c),
            _ => None,
        }
    }
}

/// The virtual machine.
pub struct Machine<'m> {
    pub(crate) module: &'m Module,
    pub(crate) config: VmConfig,
    pub(crate) layout: Layout,
    pub(crate) mem: Memory,
    pub(crate) cache: Cache,
    pub(crate) heap: Heap,
    pub(crate) store: Box<dyn PtrStore>,
    pub(crate) stats: ExecStats,
    pub(crate) frames: Vec<Frame>,
    pub(crate) sp: u64,
    pub(crate) unsafe_sp: u64,
    pub(crate) safe_sp: u64,
    pub(crate) shadow_stack: Vec<u64>,
    pub(crate) cookie: u64,
    pub(crate) output: Vec<String>,
    pub(crate) input: Vec<u8>,
    pub(crate) input_pos: usize,
    pub(crate) rng_state: u64,
    /// FuncId → code entry address.
    pub(crate) func_addrs: Vec<u64>,
    /// Entry address → FuncId.
    pub(crate) entry_to_func: HashMap<u64, FuncId, FastHash>,
    /// Return-site address → (callee-side resume is Rust state; the map
    /// is used to validate loaded return addresses).
    pub(crate) ret_sites: HashMap<u64, FuncId, FastHash>,
    /// (FuncId, BlockId, ip) → return-site address for that call site.
    pub(crate) site_of_call: HashMap<(u32, u32, usize), u64, FastHash>,
    /// GlobalId → data address.
    pub(crate) global_addrs: Vec<u64>,
    /// Global sizes (for bounds metadata).
    pub(crate) global_sizes: Vec<u64>,
    /// Intrinsic → pseudo entry address (ret2libc targets).
    pub(crate) intrinsic_addrs: HashMap<Intrinsic, u64>,
    /// Attack goals: reaching one of these addresses by an indirect
    /// transfer ends the run with `Trap::Hijacked`.
    pub(crate) goals: HashMap<u64, GoalKind, FastHash>,
    /// Live setjmp contexts keyed by token address.
    pub(crate) setjmp_ctxs: HashMap<u64, SetjmpCtx, FastHash>,
    /// Per-machine MAC key for the PAC defense family, derived
    /// deterministically from the session seed at boot. Config-immutable
    /// (needs no snapshot field); forks inherit it, so a fork
    /// authenticates pointers the original sealed.
    pub(crate) pac_key: u64,
    /// Provenance of values stored (spilled) to the safe stack, keyed by
    /// slot address: the word that was stored plus its metadata handle.
    /// The safe stack is trusted storage inside the safe region (like
    /// spilled registers), so metadata survives a round-trip through it
    /// as long as the reloaded word still matches.
    pub(crate) safe_stack_meta: HashMap<u64, (u64, MetaId), FastHash>,
    /// Count of SFI-masked accesses (for amortized charging).
    pub(crate) sfi_masked: u64,
    /// Functions whose signature-hash matches at least one other —
    /// cached per-callsite CFI target sets are derived lazily.
    pub(crate) sig_hashes: Vec<u64>,
    /// The provenance interner: every based-on record lives here once,
    /// referenced by the [`MetaId`] handles inside values.
    pub(crate) meta: MetaTable,
    /// Per-function frame descriptors (shared by both engines).
    pub(crate) frame_descs: Vec<FrameDesc>,
    /// Pre-interned code provenance per function (FuncAddr results).
    pub(crate) func_meta: Vec<MetaId>,
    /// Pre-interned data provenance per global (GlobalAddr results).
    pub(crate) global_meta: Vec<MetaId>,
    /// The module compiled to bytecode, populated on first use by the
    /// bytecode engine.
    pub(crate) bc: Option<levee_bc::BcModule>,
    /// Fusion plan counts recorded when the bytecode was compiled
    /// (`Some` once compiled; all-zero when fusion was off). Survives
    /// reset along with the bytecode itself.
    pub(crate) fuse_stats: Option<levee_bc::FuseStats>,
    /// The execution profiler ([`crate::probe`]), attached when
    /// [`VmConfig::profile`] is set. Host-side observation only: no
    /// probe method touches the simulated cost model.
    pub(crate) probe: Option<Box<Profiler>>,
    /// Recycled register files: calls are frequent enough that
    /// allocating a fresh `Vec<V>` per frame shows up in profiles.
    pub(crate) reg_pool: Vec<Vec<V>>,
    /// Machine-level scalars of the post-load snapshot (the bulky state
    /// — memory pages, store slots, heap maps — is held copy-on-write
    /// *inside* [`Memory`], the store and [`Heap`]). `Some` whenever
    /// [`VmConfig::reset_mode`] is [`ResetMode::Snapshot`]; captured at
    /// the end of [`Machine::boot`].
    snapshot: Option<Snapshot>,
    /// What the most recent [`Machine::reset`] cost; all-zero before
    /// the first reset.
    last_reset: ResetStats,
}

/// A `Machine` migrates whole into worker threads (levee-core's
/// `SessionPool`); pin the `Send` guarantee at compile time so a
/// non-`Send` field (e.g. a store without the `Send` supertrait)
/// cannot regress it silently.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Machine<'static>>();
};

/// Machine-level state of the post-`load()` image that is not already
/// held by a component baseline: the provenance-table high-water
/// [`MetaMark`] plus the post-load RNG scalars. Everything else a
/// restore re-establishes is either component-owned
/// ([`Memory::capture_snapshot`], `PtrStore::capture_snapshot`,
/// [`Heap::capture_snapshot`]) or recomputed from `config`/`layout`.
#[derive(Clone)]
struct Snapshot {
    /// Rewind point for the provenance interner: entries minted by a
    /// run are dropped, loader-minted handles (`func_meta`,
    /// `global_meta`) stay valid — no generation bump, unlike the
    /// loader reset path.
    meta: MetaMark,
    /// Post-load deterministic RNG state (the run's `rand` intrinsic
    /// advances it).
    rng_state: u64,
    /// The stack cookie drawn at boot (config-deterministic; kept here
    /// so a restore never has to replay the boot RNG sequence).
    cookie: u64,
}

impl<'m> Machine<'m> {
    /// Loads `module` into a fresh machine with the given config.
    pub fn new(module: &'m Module, config: VmConfig) -> Self {
        Self::boot(module, config, MetaTable::new())
    }

    /// Shared constructor behind [`Machine::new`] and [`Machine::reset`]:
    /// builds a freshly-loaded machine around an existing provenance
    /// table (reset passes the old table with its generation already
    /// bumped, so handles minted before the reset stay invalid).
    fn boot(module: &'m Module, config: VmConfig, meta: MetaTable) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5afe_5afe);
        let layout = if config.aslr || config.isolation == Isolation::InfoHiding {
            Layout::randomized(&mut rng, config.aslr)
        } else {
            Layout::fixed()
        };
        let mut m = Machine {
            module,
            config,
            layout,
            mem: Memory::new(),
            cache: Cache::default_l1(),
            heap: Heap::new(layout.heap_base, layout::HEAP_LIMIT),
            store: config.store_kind.instantiate(layout.ptr_store_base()),
            stats: ExecStats::default(),
            frames: Vec::new(),
            sp: layout.stack_top,
            unsafe_sp: layout.unsafe_stack_top,
            safe_sp: layout.safe_stack_top(),
            shadow_stack: Vec::new(),
            cookie: rng.gen::<u64>() | 1,
            output: Vec::new(),
            input: Vec::new(),
            input_pos: 0,
            rng_state: config
                .seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1),
            func_addrs: Vec::new(),
            entry_to_func: HashMap::default(),
            ret_sites: HashMap::default(),
            site_of_call: HashMap::default(),
            global_addrs: Vec::new(),
            global_sizes: Vec::new(),
            intrinsic_addrs: HashMap::new(),
            goals: HashMap::default(),
            setjmp_ctxs: HashMap::default(),
            // Salted splitmix of the seed, NOT a draw from the boot RNG:
            // deriving the key out-of-band keeps every existing RNG
            // stream (layout, cookie, `rand`) bit-identical whether or
            // not PAC is configured.
            pac_key: pac_mix(config.seed ^ 0x5EA1_C0DE_5EA1_C0DE),
            safe_stack_meta: HashMap::default(),
            sfi_masked: 0,
            sig_hashes: Vec::new(),
            meta,
            frame_descs: Vec::new(),
            func_meta: Vec::new(),
            global_meta: Vec::new(),
            bc: None,
            fuse_stats: None,
            probe: config.profile.then(|| Box::new(Profiler::new(module))),
            reg_pool: Vec::new(),
            snapshot: None,
            last_reset: ResetStats::default(),
        };
        m.load();
        // Capture the complete post-load image as the reset baseline:
        // memory pages and store slots are shared copy-on-write, the
        // (tiny) heap maps are cloned, and the provenance table records
        // its high-water mark. From here on, `reset` restores in time
        // proportional to what a run dirtied instead of re-running the
        // loader.
        if config.reset_mode == ResetMode::Snapshot {
            m.mem.capture_snapshot();
            m.heap.capture_snapshot();
            m.store.capture_snapshot();
            m.snapshot = Some(Snapshot {
                meta: m.meta.mark(),
                rng_state: m.rng_state,
                cookie: m.cookie,
            });
        }
        m
    }

    /// Forks this machine into an independent twin for another worker.
    ///
    /// The fork shares the copy-on-write substrate with the original:
    /// memory pages, safe-store pages and their captured baselines stay
    /// `Arc`-shared until either machine writes to them, so N resident
    /// workers cost one boot image plus their private dirt. Everything
    /// mutable — stats, dirty lists, the provenance table, RNG state,
    /// the cache model — is cloned, never shared, so the fork's clean-
    /// page invariant (`Arc::strong_count > 1` ⟺ shared with *its own*
    /// baseline) holds no matter how many machines hold the same pages.
    ///
    /// Compiled bytecode and the fusion plan are carried over, so forks
    /// of a precompiled machine never recompile. The profiler is not
    /// forked (profiling is per-machine observation): when
    /// [`VmConfig::profile`] is set the fork starts a fresh probe.
    ///
    /// # Panics
    ///
    /// Panics when called mid-run (live frames): forking an executing
    /// machine is an owner lifecycle bug.
    pub fn fork(&self) -> Machine<'m> {
        assert!(
            self.frames.is_empty(),
            "cannot fork a machine mid-run; fork between runs"
        );
        Machine {
            module: self.module,
            config: self.config,
            layout: self.layout,
            mem: self.mem.clone(),
            cache: self.cache.clone(),
            heap: self.heap.clone(),
            store: self.store.boxed_clone(),
            stats: self.stats,
            frames: Vec::new(),
            sp: self.sp,
            unsafe_sp: self.unsafe_sp,
            safe_sp: self.safe_sp,
            shadow_stack: self.shadow_stack.clone(),
            cookie: self.cookie,
            output: self.output.clone(),
            input: self.input.clone(),
            input_pos: self.input_pos,
            rng_state: self.rng_state,
            func_addrs: self.func_addrs.clone(),
            entry_to_func: self.entry_to_func.clone(),
            ret_sites: self.ret_sites.clone(),
            site_of_call: self.site_of_call.clone(),
            global_addrs: self.global_addrs.clone(),
            global_sizes: self.global_sizes.clone(),
            intrinsic_addrs: self.intrinsic_addrs.clone(),
            goals: self.goals.clone(),
            setjmp_ctxs: self.setjmp_ctxs.clone(),
            pac_key: self.pac_key,
            safe_stack_meta: self.safe_stack_meta.clone(),
            sfi_masked: self.sfi_masked,
            sig_hashes: self.sig_hashes.clone(),
            meta: self.meta.clone(),
            frame_descs: self.frame_descs.clone(),
            func_meta: self.func_meta.clone(),
            global_meta: self.global_meta.clone(),
            bc: self.bc.clone(),
            fuse_stats: self.fuse_stats,
            probe: self
                .config
                .profile
                .then(|| Box::new(Profiler::new(self.module))),
            reg_pool: Vec::new(),
            snapshot: self.snapshot.clone(),
            last_reset: ResetStats::default(),
        }
    }

    /// The layout of this execution (fixed or randomized).
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// The entry address of a function, by name.
    pub fn func_entry(&self, name: &str) -> Option<u64> {
        self.module
            .func_by_name(name)
            .map(|f| self.func_addrs[f.0 as usize])
    }

    /// The data address of a global, by name.
    pub fn global_addr(&self, name: &str) -> Option<u64> {
        self.module
            .global_by_name(name)
            .map(|g| self.global_addrs[g.0 as usize])
    }

    /// The pseudo entry address of a libc intrinsic (`system`, …) — the
    /// classic return-to-libc target.
    pub fn intrinsic_entry(&self, which: Intrinsic) -> u64 {
        self.intrinsic_addrs[&which]
    }

    /// Registers an attack goal: control reaching `addr` via any
    /// indirect transfer ends the run as a successful hijack.
    pub fn add_goal(&mut self, addr: u64, kind: GoalKind) {
        self.goals.insert(addr, kind);
    }

    /// All valid return-site addresses — the target set a coarse CFI
    /// return policy admits (used by CFI-bypass experiments).
    pub fn ret_site_addrs(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.ret_sites.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Starts recording the memory touch log: every simulated memory
    /// access (program loads/stores, frame slots, safe-store traffic —
    /// everything the cache model sees) in execution order. Differential
    /// suites diff the logs of two configurations to prove they perform
    /// identical access *sequences*, not merely identical totals.
    pub fn enable_mem_trace(&mut self) {
        self.cache.enable_trace();
    }

    /// The recorded memory touch log — tagged [`TouchRecord`]s (empty
    /// unless [`Machine::enable_mem_trace`] was called before running).
    pub fn mem_trace(&self) -> &[TouchRecord] {
        self.cache.trace().unwrap_or(&[])
    }

    /// The address projection of the touch log — the shape the
    /// touch-log *sequence* diff tests compare (see
    /// [`crate::probe::touch_addrs`]).
    pub fn mem_trace_addrs(&self) -> Vec<u64> {
        touch_addrs(self.mem_trace())
    }

    /// Attaches the execution profiler for subsequent runs (equivalent
    /// to constructing with [`VmConfig::profile`] set; the knob rides
    /// in the config, so it survives [`Machine::reset`]).
    pub fn enable_profile(&mut self) {
        self.config.profile = true;
        if self.probe.is_none() {
            self.probe = Some(Box::new(Profiler::new(self.module)));
        }
    }

    /// The profiling report of the last run (`None` unless profiling
    /// was enabled before it). The report carries
    /// [`Machine::last_reset_stats`] in [`ProfileReport::reset`] so
    /// `--profile` renderings can show what recycling the machine for
    /// this run cost.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.probe.as_ref().map(|p| {
            let mut report = p.report(self.module, &self.stats);
            report.reset = self.last_reset;
            report
        })
    }

    /// Superinstruction fusion plan counts, recorded when the module
    /// was compiled to bytecode (`None` until then; all-zero when
    /// fusion is off).
    pub fn fuse_stats(&self) -> Option<levee_bc::FuseStats> {
        self.fuse_stats
    }

    /// Resets the machine to its freshly-loaded state so [`Machine::run`]
    /// can be called again. Attack goals, the compiled bytecode and the
    /// mem-trace setting survive (they depend only on the module and
    /// config, which do not change); everything a run can move —
    /// frames, stacks, the memory image, heap, store, cache, stats,
    /// output — is re-armed. However the reset is performed, the result
    /// replays bit-identically to a fresh [`Machine::new`] in every
    /// simulated counter (the differential suites and the session
    /// proptest in `levee-core` enforce this).
    ///
    /// Two mechanisms, selected by [`VmConfig::reset_mode`]:
    ///
    /// * [`ResetMode::Snapshot`] (the default): restore from the
    ///   copy-on-write post-load image captured at boot, copying back
    ///   only what the last run dirtied (`restore_from_snapshot`). This
    ///   is what makes per-request machine recycling
    ///   (`levee_core::session::Session::run_batch`) nearly free.
    /// * [`ResetMode::Loader`], or any boot that captured no snapshot:
    ///   tear down and re-run the loader from the module image.
    ///
    /// [`Machine::last_reset_stats`] reports what the reset cost.
    ///
    /// The safe pointer store and the provenance table form one
    /// lifecycle unit — store slots hold generation-checked [`MetaId`]s
    /// into the table — and both reset paths keep them coherent. The
    /// loader path discards the store wholesale while the table
    /// survives with its generation bumped, so any handle a caller kept
    /// across the reset (in a [`V`]) resolves to `None` (trapping as
    /// metadata-less) instead of silently aliasing a record of the new
    /// generation. The snapshot path rewinds the table to its post-load
    /// mark instead: loader-minted handles (the ones store slots can
    /// hold at the restore point) stay valid, while run-minted handles
    /// point past the arena and likewise resolve to `None`.
    pub fn reset(&mut self) {
        if self.config.reset_mode == ResetMode::Snapshot && self.snapshot.is_some() {
            self.restore_from_snapshot();
            return;
        }
        // Bump the generation before the rebuild: `boot` re-interns the
        // loader's handles into the surviving table, so they (and
        // nothing minted earlier) are the only live handles afterwards.
        self.meta.reset();
        // Survivors: the bumped table (generation sequence continues),
        // the compiled bytecode (depends only on the module), attack
        // goals (layout is config-deterministic) and the trace setting.
        let meta = std::mem::take(&mut self.meta);
        let bc = self.bc.take();
        let fuse_stats = self.fuse_stats.take();
        let goals = std::mem::take(&mut self.goals);
        let tracing = self.cache.trace().is_some();
        *self = Self::boot(self.module, self.config, meta);
        self.bc = bc;
        self.fuse_stats = fuse_stats;
        self.goals = goals;
        if tracing {
            self.cache.enable_trace();
        }
        self.last_reset = ResetStats::default();
    }

    /// The snapshot arm of [`Machine::reset`]: reverts exactly what the
    /// last run dirtied and re-establishes the handful of scalars a
    /// fresh boot would compute, without touching the loader.
    ///
    /// The heavy state restores itself component by component —
    /// [`Memory::restore_snapshot`] re-shares dirty pages,
    /// `PtrStore::restore_snapshot` reverts dirty store structure,
    /// [`Heap::restore_snapshot`] copies the allocator maps back only
    /// if the run allocated, and [`MetaTable::truncate_to`] drops
    /// run-interned provenance. Everything else (stacks, cache, stats,
    /// output, setjmp contexts) is cleared or recomputed here exactly
    /// as [`Machine::boot`] would have produced it.
    fn restore_from_snapshot(&mut self) {
        let snap = self.snapshot.take().expect("snapshot present");
        let (pages_dirtied, bytes_restored) = self.mem.restore_snapshot();
        let store_bytes_restored = self.store.restore_snapshot();
        self.heap.restore_snapshot();
        let meta_entries_dropped = self.meta.truncate_to(&snap.meta);
        // Cache reset empties the touch log but keeps tracing enabled,
        // matching the loader path's re-enable.
        self.cache.reset();
        self.stats = ExecStats::default();
        // Frames left by a trapped run recycle through the same pool as
        // completed calls — `recycle_vec` clears them, upholding
        // `take_vec`'s invariant that pooled vectors are empty.
        let leftovers: Vec<_> = self.frames.drain(..).map(|f| f.regs).collect();
        for regs in leftovers {
            self.recycle_vec(regs);
        }
        self.shadow_stack.clear();
        self.sp = self.layout.stack_top;
        self.unsafe_sp = self.layout.unsafe_stack_top;
        self.safe_sp = self.layout.safe_stack_top();
        self.cookie = snap.cookie;
        self.output.clear();
        self.input.clear();
        self.input_pos = 0;
        self.rng_state = snap.rng_state;
        self.setjmp_ctxs.clear();
        self.safe_stack_meta.clear();
        self.sfi_masked = 0;
        // A fresh profiler, like a fresh boot's (profiling may also
        // have been enabled after boot via `enable_profile`).
        if self.config.profile {
            self.probe = Some(Box::new(Profiler::new(self.module)));
        }
        self.last_reset = ResetStats {
            used_snapshot: true,
            pages_dirtied,
            bytes_restored,
            store_bytes_restored,
            meta_entries_dropped,
        };
        self.snapshot = Some(snap);
    }

    /// What the most recent [`Machine::reset`] cost (all-zero before
    /// the first reset). Reset cost lives outside [`ExecStats`] so the
    /// simulated counters of a recycled run stay bit-identical to a
    /// fresh machine's.
    pub fn last_reset_stats(&self) -> ResetStats {
        self.last_reset
    }

    /// Pages held by the post-load snapshot (0 when booted with
    /// [`ResetMode::Loader`]).
    pub fn snapshot_pages(&self) -> usize {
        self.mem.snapshot_pages()
    }

    /// Bytes the snapshot holds privately — pre-write copies of pages
    /// the current run has dirtied. Clean pages are shared with the
    /// live image and counted once, by the regular residency; see
    /// [`Memory::snapshot_private_bytes`].
    pub fn snapshot_private_bytes(&self) -> u64 {
        self.mem.snapshot_private_bytes()
    }

    fn load(&mut self) {
        // Code layout: program functions low, the libc (intrinsic) block
        // high — and only the libc block moves under ASLR (non-PIE).
        let libc_base = layout::CODE_BASE + layout::LIBC_CODE_OFFSET + self.layout.libc_shift;
        for (i, intr) in Intrinsic::all().iter().enumerate() {
            let addr = libc_base + 64 + i as u64 * 16;
            self.intrinsic_addrs.insert(*intr, addr);
        }
        let func_area = layout::CODE_BASE + 0x10_000;
        for (fid, f) in self.module.iter_funcs() {
            let entry = func_area + fid.0 as u64 * layout::FUNC_STRIDE;
            self.func_addrs.push(entry);
            self.entry_to_func.insert(entry, fid);
            self.sig_hashes.push(f.sig.type_hash());
            self.frame_descs.push(FrameDesc::of(f));
            let code_meta = self.meta.intern(Entry::code(entry));
            self.func_meta.push(code_meta);
            // Assign return sites for every call-shaped instruction, in
            // `iter_call_sites` order — the same numbering the bytecode
            // compiler embeds as site indices.
            for (site, (bid, ip, _)) in f.iter_call_sites().enumerate() {
                let addr = entry + 16 * (site as u64 + 1);
                self.site_of_call.insert((fid.0, bid.0, ip), addr);
                self.ret_sites.insert(addr, fid);
            }
        }
        // Code and rodata are write-protected (threat model §2).
        self.mem.protect(
            layout::CODE_BASE,
            func_area - layout::CODE_BASE + self.module.funcs.len() as u64 * layout::FUNC_STRIDE,
        );

        // Globals.
        let mut ro_cursor = self.layout.rodata_base;
        let mut rw_cursor = self.layout.data_base;
        for g in &self.module.globals {
            let size = self.module.types.size_of(&g.ty).max(1);
            let cursor = if g.read_only {
                &mut ro_cursor
            } else {
                &mut rw_cursor
            };
            let addr = crate::ctx_align(*cursor, 16);
            *cursor = addr + size;
            self.global_addrs.push(addr);
            self.global_sizes.push(size);
            let data_meta = self.meta.intern(Entry::data(addr, addr, addr + size, 0));
            self.global_meta.push(data_meta);
            // Materialize the initializer.
            let mut off = addr;
            for atom in &g.init {
                match atom {
                    InitAtom::Int { value, size } => {
                        self.mem.loader_write_uint(off, *value, *size);
                        off += size;
                    }
                    InitAtom::FuncPtr(fid) => {
                        let target = func_area + fid.0 as u64 * layout::FUNC_STRIDE;
                        // Under PAC the loader plays the linker's part:
                        // code pointers embedded in initializers are
                        // sealed in place, so instrumented loads of them
                        // authenticate. Loader traffic predates
                        // execution — no charge, no counter.
                        let word = if self.config.pac == PacMode::Off {
                            target
                        } else {
                            self.pac_seal(target, self.pac_ctx(off))
                        };
                        self.mem.loader_write_uint(off, word, 8);
                        off += 8;
                    }
                    InitAtom::GlobalPtr(_, _) => {
                        // Resolved in a second pass (forward references).
                        off += 8;
                    }
                    InitAtom::Bytes(b) => {
                        for (i, byte) in b.iter().enumerate() {
                            self.mem.loader_write_u8(off + i as u64, *byte);
                        }
                        off += b.len() as u64;
                    }
                    InitAtom::Zero(n) => {
                        for i in 0..*n {
                            self.mem.loader_write_u8(off + i, 0);
                        }
                        off += n;
                    }
                }
            }
            // Zero-fill the tail.
            while off < addr + size {
                self.mem.loader_write_u8(off, 0);
                off += 1;
            }
        }
        // Second pass: global-to-global pointers, and — when the build
        // protects code pointers — safe-store entries for every pointer
        // the compiler/linker embedded in initializers (§4 "Binary
        // level functionality": jump tables, dispatch tables, vtables).
        for (gid, g) in self.module.globals.iter().enumerate() {
            let mut off = self.global_addrs[gid];
            for atom in &g.init {
                match atom {
                    InitAtom::GlobalPtr(target, delta) => {
                        let target_addr = self.global_addrs[target.0 as usize] + delta;
                        self.mem.loader_write_uint(off, target_addr, 8);
                        if self.config.protect_runtime_code_ptrs {
                            // The pre-interned per-global handle is the
                            // based-on record of the initializer pointer.
                            let meta = self.global_meta[target.0 as usize];
                            // Loader traffic predates execution: not charged.
                            let _ = self.store.set(off, levee_rt::Slot::new(target_addr, meta));
                        }
                    }
                    InitAtom::FuncPtr(fid) if self.config.protect_runtime_code_ptrs => {
                        let entry = func_area + fid.0 as u64 * layout::FUNC_STRIDE;
                        let meta = self.func_meta[fid.0 as usize];
                        let _ = self.store.set(off, levee_rt::Slot::new(entry, meta));
                    }
                    _ => {}
                }
                off += atom.size();
            }
        }
        // Write-protect read-only globals (jump tables, vtables, GOT).
        let ro_len = ro_cursor - self.layout.rodata_base;
        if ro_len > 0 {
            self.mem.protect(self.layout.rodata_base, ro_len);
        }
        // Map the stacks as zero memory, with one slack page above each
        // top (environment/TCB scratch) so that small overflows running
        // off a stack corrupt adjacent data instead of faulting.
        self.mem.map_zero(
            self.layout.stack_top - layout::STACK_LIMIT,
            layout::STACK_LIMIT + 4096,
        );
        self.mem.map_zero(
            self.layout.unsafe_stack_top - layout::UNSAFE_STACK_LIMIT,
            layout::UNSAFE_STACK_LIMIT + 4096,
        );
        self.mem
            .map_zero(self.layout.safe_stack_top() - (4 << 20), 4 << 20);
        // Heap pages map on demand via malloc.
    }

    /// Runs `main` to completion with the given attacker-controlled
    /// input payload.
    pub fn run(&mut self, input: &[u8]) -> RunOutcome {
        self.input = input.to_vec();
        self.input_pos = 0;
        let main = match self.module.func_by_name("main") {
            Some(f) => f,
            None => {
                return RunOutcome {
                    status: ExitStatus::Trapped(Trap::BadControl { addr: 0 }),
                    stats: self.stats,
                    output: String::new(),
                }
            }
        };
        if let Some(p) = self.probe.as_deref_mut() {
            p.begin_run(self.stats.cycles);
        }
        let status = match self.enter_function(main, vec![], None, MAIN_RET_SENTINEL) {
            Err(trap) => ExitStatus::Trapped(trap),
            Ok(()) => match self.config.engine {
                Engine::Walk => self.run_loop(),
                Engine::Bytecode => self.run_bytecode(),
            },
        };
        if let Some(p) = self.probe.as_deref_mut() {
            p.end_run(
                self.stats.cycles,
                self.stats.insts,
                self.stats.checks,
                matches!(status, ExitStatus::Trapped(_)),
            );
        }
        self.finalize_stats();
        RunOutcome {
            status,
            stats: self.stats,
            output: self.output.join("\n"),
        }
    }

    fn run_loop(&mut self) -> ExitStatus {
        loop {
            match self.step() {
                Ok(Some(exit)) => return exit,
                Ok(None) => {}
                Err(Trap::ProgramExit(code)) => return ExitStatus::Exited(code),
                Err(trap) => return ExitStatus::Trapped(trap),
            }
        }
    }

    fn finalize_stats(&mut self) {
        let (h, miss) = self.cache.stats();
        self.stats.cache_hits = h;
        self.stats.cache_misses = miss;
        self.stats.store_bytes = self.store.memory_bytes();
        self.stats.store_entries_peak = self
            .stats
            .store_entries_peak
            .max(self.store.entry_count() as u64);
        self.stats.regular_bytes = self.mem.resident_bytes();
        self.stats.heap_peak = self.heap.peak_bytes();
        self.stats.input_consumed = self.input_pos as u64;
    }

    // ---- charging helpers -------------------------------------------------

    /// Charges one data-memory access at `addr` (cache + SFI mask).
    /// The SFI mask is a single ALU op that pipelines with the access;
    /// we amortize it as one cycle per three masked accesses.
    ///
    /// `kind`/`width` tag the touch-log record only — they never affect
    /// the charge.
    #[inline]
    pub(crate) fn charge_mem(&mut self, addr: u64, regular: bool, kind: TouchKind, width: u8) {
        self.stats.cycles += self.config.cost.mem_hit;
        if !self.cache.access(addr, kind, width) {
            self.stats.cycles += self.config.cost.mem_miss;
        }
        if regular && self.config.isolation == Isolation::Sfi {
            self.sfi_masked += 1;
            if self.sfi_masked.is_multiple_of(3) {
                self.stats.cycles += self.config.cost.sfi_mask;
            }
        }
    }

    /// Charges the safe-store traffic described by `touched`; `kind`
    /// tags the touch log (store writes vs lookups read the same slot
    /// addresses).
    pub(crate) fn charge_store_touches(&mut self, touched: levee_rt::Touched, kind: TouchKind) {
        const SLOT_W: u8 = levee_rt::SLOT_SIZE as u8;
        for addr in touched.iter() {
            self.stats.cycles += self.config.cost.mem_hit;
            if !self.cache.access(addr, kind, SLOT_W) {
                self.stats.cycles += self.config.cost.mem_miss;
            }
        }
        // Touches beyond the recorded sample (range operations, probe
        // chains) are charged as sequential slot-sized accesses
        // following the last recorded address.
        if touched.spill > 0 {
            let base = touched.iter().last().unwrap_or_else(|| self.store.base());
            for i in 1..=touched.spill as u64 {
                self.stats.cycles += self.config.cost.mem_hit;
                if !self
                    .cache
                    .access(base + i * levee_rt::SLOT_SIZE, kind, SLOT_W)
                {
                    self.stats.cycles += self.config.cost.mem_miss;
                }
            }
        }
        if touched.page_fault {
            self.stats.cycles += self.config.cost.page_fault;
            self.stats.page_faults += 1;
            if self.probe.is_some() {
                let (cycles, addr) = (
                    self.stats.cycles,
                    touched.iter().last().unwrap_or_else(|| self.store.base()),
                );
                if let Some(p) = self.probe.as_deref_mut() {
                    p.page_fault(cycles, addr);
                }
            }
        }
        let op_cost = match self.config.hardware {
            crate::config::HardwareModel::Software => self.config.cost.store_op,
            crate::config::HardwareModel::Mpx => self.config.cost.mpx_store_op,
        };
        self.stats.cycles += op_cost;
    }

    // ---- pointer authentication (PAC) -------------------------------------
    //
    // The sealed representation lives only in (regular) memory:
    // registers always hold raw pointers, `pac_sign` runs at
    // memory-write boundaries and `pac_auth` at memory-read boundaries
    // (the `levee_core::pac` pass inserts them; `push_frame`/`do_return`
    // and the setjmp/longjmp paths do the same for machine-written code
    // pointers). See `levee_core::pac` for the pass, and
    // `levee_ripe::template` for the substitution/forgery attacks the
    // context binding does (and does not) stop.

    /// True when this machine seals code pointers.
    #[inline]
    pub(crate) fn pac_active(&self) -> bool {
        self.config.pac != PacMode::Off
    }

    /// The binding context for a code pointer held in slot `slot`:
    /// 0 under [`PacMode::Plain`] (value-only binding), the slot
    /// address under [`PacMode::Tight`] (PACTight-style per-location
    /// binding, which is what defeats substitution).
    #[inline]
    pub(crate) fn pac_ctx(&self, slot: u64) -> u64 {
        match self.config.pac {
            PacMode::Tight => slot,
            _ => 0,
        }
    }

    /// The MAC tag over `raw`'s address bits and `ctx`, `pac_tag_bits`
    /// wide.
    #[inline]
    pub(crate) fn pac_tag(&self, raw: u64, ctx: u64) -> u64 {
        let bits = u32::from(self.config.pac_tag_bits.clamp(1, 16));
        let mix =
            pac_mix((raw & PAC_PTR_MASK) ^ self.pac_key ^ ctx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        mix >> (64 - bits)
    }

    /// Seals `raw` under `ctx`: packs the MAC tag into the word's spare
    /// high bits. No layout growth — the sealed pointer is still one
    /// 64-bit word.
    #[inline]
    pub(crate) fn pac_seal(&self, raw: u64, ctx: u64) -> u64 {
        let bits = u32::from(self.config.pac_tag_bits.clamp(1, 16));
        (raw & PAC_PTR_MASK) | (self.pac_tag(raw, ctx) << (64 - bits))
    }

    /// Authenticates a sealed word under `ctx`: recomputes the seal and
    /// compares the full word. Returns the stripped raw pointer, or
    /// [`Trap::Pac`] on tag mismatch (an unsealed or substituted word).
    #[inline]
    pub(crate) fn pac_auth_val(&self, sealed: u64, ctx: u64) -> Result<u64, Trap> {
        let raw = sealed & PAC_PTR_MASK;
        if self.pac_seal(raw, ctx) == sealed {
            Ok(raw)
        } else {
            Err(Trap::Pac { addr: raw })
        }
    }

    /// Charges one `pac_sign` (PACIA-analogue) op.
    #[inline]
    pub(crate) fn charge_pac_sign(&mut self) {
        self.stats.pac_signs += 1;
        self.stats.cycles += self.config.cost.pac_sign;
    }

    /// Charges one `pac_auth` (AUTIA-analogue) op.
    #[inline]
    pub(crate) fn charge_pac_auth(&mut self) {
        self.stats.pac_auths += 1;
        self.stats.cycles += self.config.cost.pac_auth;
    }

    #[inline]
    pub(crate) fn charge_check(&mut self) {
        self.stats.checks += 1;
        self.stats.cycles += match self.config.hardware {
            crate::config::HardwareModel::Software => self.config.cost.check,
            crate::config::HardwareModel::Mpx => self.config.cost.mpx_check,
        };
    }

    // ---- probe glue --------------------------------------------------------
    //
    // Thin forwarding wrappers around the optional profiler. All of them
    // are inert no-ops when profiling is off, and none touches the cost
    // model when it is on — the cycle/inst/check values they pass are
    // *read* from `stats` at call time.

    /// A frame was pushed for `func` (called at the end of `push_frame`,
    /// after all call-setup charges, so setup cost stays with the
    /// caller).
    #[inline]
    pub(crate) fn probe_enter(&mut self, func: u32) {
        if self.probe.is_some() {
            let (c, i, k) = (self.stats.cycles, self.stats.insts, self.stats.checks);
            if let Some(p) = self.probe.as_deref_mut() {
                p.enter(func, c, i, k);
            }
        }
    }

    /// A frame is being popped (called at the top of `pop_frame`, after
    /// the return-sequence charges, so return cost stays with the
    /// callee).
    #[inline]
    pub(crate) fn probe_exit(&mut self) {
        if self.probe.is_some() {
            let (c, i, k) = (self.stats.cycles, self.stats.insts, self.stats.checks);
            if let Some(p) = self.probe.as_deref_mut() {
                p.exit(c, i, k);
            }
        }
    }

    /// A walker CPI check at `(func, block, ip)` is about to run.
    #[inline]
    pub(crate) fn probe_check_attempt_ir(&mut self, key: (u32, u32, u32)) {
        if self.probe.is_some() {
            let now = self.stats.cycles;
            if let Some(p) = self.probe.as_deref_mut() {
                p.check_attempt_ir(key, now);
            }
        }
    }

    /// The walker CPI check at `(func, block, ip)` passed.
    #[inline]
    pub(crate) fn probe_check_pass_ir(&mut self, key: (u32, u32, u32)) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.check_pass_ir(key);
        }
    }

    /// A bytecode CPI check at `func`'s stream offset `pc` is about to
    /// run.
    #[inline]
    pub(crate) fn probe_check_attempt_bc(&mut self, func: u32, pc: u32) {
        if self.probe.is_some() {
            let now = self.stats.cycles;
            if let Some(p) = self.probe.as_deref_mut() {
                p.check_attempt_bc(func, pc, now);
            }
        }
    }

    /// The bytecode CPI check at (`func`, `pc`) passed.
    #[inline]
    pub(crate) fn probe_check_pass_bc(&mut self, func: u32, pc: u32) {
        if let Some(p) = self.probe.as_deref_mut() {
            p.check_pass_bc(func, pc);
        }
    }

    /// A safe-pointer-store operation executed at `addr`.
    #[inline]
    pub(crate) fn probe_store_op(&mut self, addr: u64, is_load: bool) {
        if self.probe.is_some() {
            let now = self.stats.cycles;
            if let Some(p) = self.probe.as_deref_mut() {
                p.store_op(now, addr, is_load);
            }
        }
    }

    // ---- guarded program memory access ------------------------------------

    /// Converts a raw memory error into a trap.
    pub(crate) fn mem_trap(e: MemError) -> Trap {
        match e {
            MemError::Unmapped { addr } => Trap::Unmapped { addr },
            MemError::WriteProtected { addr } => Trap::WriteProtected { addr },
        }
    }

    /// Enforces the isolation invariant for an access from `space`.
    #[inline]
    pub(crate) fn isolation_check(&self, addr: u64, space: MemSpace) -> Result<(), Trap> {
        if space == MemSpace::Regular && self.layout.in_safe_region(addr) {
            return match self.config.isolation {
                Isolation::None => Ok(()),
                Isolation::Segmentation | Isolation::Sfi => Err(Trap::SafeRegion { addr }),
                // Under information hiding a regular access to the safe
                // region means the program (or attacker) somehow forged
                // an address; it behaves like a wild access.
                Isolation::InfoHiding => Err(Trap::Unmapped { addr }),
            };
        }
        Ok(())
    }

    /// Program-level typed read.
    #[inline]
    pub(crate) fn prog_read(&mut self, addr: u64, size: u64, space: MemSpace) -> Result<u64, Trap> {
        self.isolation_check(addr, space)?;
        self.charge_mem(
            addr,
            space == MemSpace::Regular,
            TouchKind::Read,
            size as u8,
        );
        self.mem.read_uint(addr, size).map_err(Self::mem_trap)
    }

    /// Program-level typed write.
    #[inline]
    pub(crate) fn prog_write(
        &mut self,
        addr: u64,
        value: u64,
        size: u64,
        space: MemSpace,
    ) -> Result<(), Trap> {
        self.isolation_check(addr, space)?;
        self.charge_mem(
            addr,
            space == MemSpace::Regular,
            TouchKind::Write,
            size as u8,
        );
        self.mem
            .write_uint(addr, value, size)
            .map_err(Self::mem_trap)
    }

    // ---- register access ---------------------------------------------------

    #[inline]
    pub(crate) fn frame(&self) -> &Frame {
        self.frames.last().expect("no active frame")
    }

    #[inline]
    pub(crate) fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no active frame")
    }

    /// The `(func, block, ip)` key of the walker's in-flight
    /// instruction (`ip` has already advanced past it when an
    /// instruction executes).
    #[inline]
    pub(crate) fn current_site_key(&self) -> (u32, u32, u32) {
        let f = self.frame();
        (f.func.0, f.block.0, f.ip as u32 - 1)
    }

    #[inline]
    pub(crate) fn eval(&self, op: Operand) -> V {
        match op {
            Operand::Const(c) => V::int(c as u64),
            Operand::Value(v) => self.frame().regs[v.0 as usize],
        }
    }

    #[inline]
    pub(crate) fn set_reg(&mut self, dest: ValueId, v: V) {
        self.frame_mut().regs[dest.0 as usize] = v;
    }

    // ---- provenance helpers ------------------------------------------------

    /// Interns the based-on part of `e`: its `value` field is normalized
    /// to `lower` so every pointer based on one object shares a record.
    #[inline]
    pub(crate) fn intern_prov(&mut self, e: Entry) -> MetaId {
        self.meta.intern(Entry {
            value: e.lower,
            ..e
        })
    }

    /// A pointer value based on the object `[lower, upper)`. (Code
    /// pointers never intern here: `FuncAddr` uses the pre-interned
    /// [`Machine::func_meta`] handles.)
    #[inline]
    pub(crate) fn v_data(&mut self, raw: u64, lower: u64, upper: u64, id: u64) -> V {
        V {
            raw,
            meta: self.meta.intern(Entry::data(lower, lower, upper, id)),
        }
    }

    /// Deterministic LCG for the `rand` intrinsic.
    pub(crate) fn next_rand(&mut self) -> u64 {
        self.rng_state = self
            .rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.rng_state >> 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The representation guarantee behind the V shrink: a runtime value
    /// is at most 16 bytes (raw word + interned metadata handle), down
    /// from the 48 bytes of the inline `Option<Entry>` layout, so every
    /// register file, argument list and frame copy moves ≤⅓ the memory.
    #[test]
    fn value_is_compact() {
        assert!(std::mem::size_of::<V>() <= 16);
        assert_eq!(std::mem::size_of::<MetaId>(), 4);
    }
}
