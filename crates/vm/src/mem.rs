//! Sparse byte-addressable memory with region permissions.
//!
//! One flat 64-bit space backs both the regular region and the safe
//! region; *who is allowed to touch what* is decided by the caller (the
//! machine) according to the isolation model — this module only provides
//! paging, endianness and write protection of code/rodata.

use std::collections::HashMap;
use std::sync::Arc;

use levee_rt::FastHash;

/// Page size of the backing store.
pub const PAGE_SIZE: u64 = 4096;

/// Why a raw memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Read of a page that was never written or reserved (wild pointer).
    Unmapped { addr: u64 },
    /// Write to write-protected memory (code, rodata).
    WriteProtected { addr: u64 },
}

/// One backing page.
///
/// Pages are reference-counted so a captured snapshot (see
/// [`Memory::capture_snapshot`]) can share clean pages with the live
/// image copy-on-write: a page whose `Arc` is shared with the baseline
/// is split by [`Arc::make_mut`] on first write and recorded in the
/// dirty list, so [`Memory::restore_snapshot`] only touches what a run
/// actually wrote.
type Page = Arc<[u8; PAGE_SIZE as usize]>;

/// Number of directly-indexed page slots covering the low 4 GB — the
/// whole regular region (code, globals, heap, stacks) lives below this
/// line. The table is 8 MB of virtual address space per machine, backed
/// lazily by the host OS (allocated zeroed, so untouched slots cost
/// nothing physical).
const LOW_PAGES: u64 = (1 << 32) / PAGE_SIZE;

/// Size-specialized little-endian store into a page.
#[inline(always)]
fn write_le(p: &mut [u8; PAGE_SIZE as usize], off: usize, val: u64, size: u64) {
    match size {
        8 => p[off..off + 8].copy_from_slice(&val.to_le_bytes()),
        4 => p[off..off + 4].copy_from_slice(&(val as u32).to_le_bytes()),
        2 => p[off..off + 2].copy_from_slice(&(val as u16).to_le_bytes()),
        _ => p[off] = val as u8,
    }
}

/// Sparse paged memory.
///
/// Page lookup is the hottest operation in the VM — every simulated
/// load/store performs one — so the low 4 GB (the regular region) is
/// indexed by a flat direct table: one load, no hashing. High addresses
/// (the safe region) fall back to a hash map; they are touched far less
/// often.
#[derive(Default, Clone)]
pub struct Memory {
    /// Direct page table for pages below 4 GB, allocated zeroed on
    /// first touch.
    low: Vec<Option<Page>>,
    /// Pages at or above 4 GB (safe region).
    high_pages: HashMap<u64, Page, FastHash>,
    /// Resident page count across both tiers.
    resident: usize,
    /// Write-protected address ranges (code segment, read-only globals).
    protected: Vec<(u64, u64)>,
    /// Ranges that reads may touch without an explicit prior write
    /// (mapped-but-zero regions: stacks, bss). Reads elsewhere fault.
    mapped: Vec<(u64, u64)>,
    /// Post-load baseline image shared copy-on-write with the live
    /// pages. `Some` turns on dirty tracking in the write chokepoints.
    baseline: Option<Box<MemBaseline>>,
    /// Page indices dirtied since the last capture/restore. No dedup
    /// needed: the first write to a shared page splits its `Arc`
    /// (strong count drops to 1 on the live side), so later writes
    /// skip the push; run-materialized pages are pushed exactly once,
    /// at materialization.
    dirty: Vec<u64>,
    /// True when `protect`/`map_zero` ran after capture — the range
    /// sets must then be cloned back from the baseline on restore.
    ranges_dirty: bool,
}

/// Immutable post-load image backing [`Memory::restore_snapshot`].
///
/// Holds an `Arc` clone of every page resident at capture time (both
/// tiers, keyed by page index) plus the scalars and range sets a run
/// can move. Clean pages stay physically shared with the live image —
/// the snapshot's only private memory is the pre-write copy of pages
/// the current run has dirtied (see
/// [`Memory::snapshot_private_bytes`]).
#[derive(Clone)]
struct MemBaseline {
    pages: HashMap<u64, Page, FastHash>,
    resident: usize,
    protected: Vec<(u64, u64)>,
    mapped: Vec<(u64, u64)>,
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[start, start+len)` write-protected (returns nothing; the
    /// protection is enforced on every subsequent write).
    pub fn protect(&mut self, start: u64, len: u64) {
        if self.baseline.is_some() {
            self.ranges_dirty = true;
        }
        self.protected.push((start, start.saturating_add(len)));
    }

    /// Maps `[start, start+len)` as readable zero-initialized memory.
    ///
    /// The range set stays sorted and coalesced: `malloc` maps a range
    /// per allocation, so lookups must not degrade to a linear scan
    /// over thousands of entries.
    pub fn map_zero(&mut self, start: u64, len: u64) {
        if self.baseline.is_some() {
            self.ranges_dirty = true;
        }
        let end = start.saturating_add(len);
        let mut i = self.mapped.partition_point(|&(s, _)| s < start);
        self.mapped.insert(i, (start, end));
        if i > 0 && self.mapped[i - 1].1 >= self.mapped[i].0 {
            self.mapped[i - 1].1 = self.mapped[i - 1].1.max(self.mapped[i].1);
            self.mapped.remove(i);
            i -= 1;
        }
        while i + 1 < self.mapped.len() && self.mapped[i].1 >= self.mapped[i + 1].0 {
            self.mapped[i].1 = self.mapped[i].1.max(self.mapped[i + 1].1);
            self.mapped.remove(i + 1);
        }
    }

    fn is_protected(&self, addr: u64) -> bool {
        self.protected.iter().any(|(s, e)| (*s..*e).contains(&addr))
    }

    /// True if `addr` lies in a mapped-but-possibly-unmaterialized range
    /// (does not consult resident pages).
    fn in_mapped_ranges(&self, addr: u64) -> bool {
        let i = self.mapped.partition_point(|&(s, _)| s <= addr);
        i > 0 && addr < self.mapped[i - 1].1
    }

    /// True if the whole span `[start, end)` lies in one mapped range
    /// (ranges are coalesced, so one range suffices).
    fn span_mapped(&self, start: u64, end: u64) -> bool {
        let i = self.mapped.partition_point(|&(s, _)| s <= start);
        i > 0 && end <= self.mapped[i - 1].1
    }

    /// True if any protected range overlaps `[start, end)`.
    fn span_protected(&self, start: u64, end: u64) -> bool {
        self.protected.iter().any(|&(s, e)| start < e && s < end)
    }

    fn is_mapped(&self, addr: u64) -> bool {
        self.in_mapped_ranges(addr) || self.page(addr / PAGE_SIZE).is_some()
    }

    /// The resident page containing `page_idx`, if materialized.
    #[inline(always)]
    fn page(&self, page_idx: u64) -> Option<&[u8; PAGE_SIZE as usize]> {
        if page_idx < LOW_PAGES {
            self.low.get(page_idx as usize)?.as_deref()
        } else {
            self.high_pages.get(&page_idx).map(|p| &**p)
        }
    }

    /// Mutable access to the resident page containing `page_idx`.
    ///
    /// This is one of the two write chokepoints (with
    /// [`ensure_page`](Self::ensure_page)): when a snapshot is live and
    /// the page is still shared with it, the page is recorded dirty and
    /// split copy-on-write before the caller writes through it.
    #[inline(always)]
    fn page_mut(&mut self, page_idx: u64) -> Option<&mut [u8; PAGE_SIZE as usize]> {
        if page_idx < LOW_PAGES {
            let page = self.low.get_mut(page_idx as usize)?.as_mut()?;
            if self.baseline.is_some() && Arc::strong_count(page) > 1 {
                self.dirty.push(page_idx);
            }
            Some(Arc::make_mut(page))
        } else {
            let page = self.high_pages.get_mut(&page_idx)?;
            if self.baseline.is_some() && Arc::strong_count(page) > 1 {
                self.dirty.push(page_idx);
            }
            Some(Arc::make_mut(page))
        }
    }

    /// Materializes (or returns) the page containing `page_idx` — the
    /// second write chokepoint; see [`page_mut`](Self::page_mut) for
    /// the dirty-tracking contract. Pages materialized while a snapshot
    /// is live are dirty by construction (the baseline doesn't hold
    /// them) and recorded here, at materialization.
    fn ensure_page(&mut self, page_idx: u64) -> &mut [u8; PAGE_SIZE as usize] {
        let tracking = self.baseline.is_some();
        if page_idx < LOW_PAGES {
            if self.low.is_empty() {
                // One zeroed 8 MB table; the host OS backs it lazily.
                self.low = vec![None; LOW_PAGES as usize];
            }
            let slot = &mut self.low[page_idx as usize];
            match slot {
                Some(page) => {
                    if tracking && Arc::strong_count(page) > 1 {
                        self.dirty.push(page_idx);
                    }
                    Arc::make_mut(page)
                }
                None => {
                    if tracking {
                        self.dirty.push(page_idx);
                    }
                    self.resident += 1;
                    Arc::make_mut(slot.insert(Arc::new([0; PAGE_SIZE as usize])))
                }
            }
        } else {
            match self.high_pages.entry(page_idx) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let page = e.into_mut();
                    if tracking && Arc::strong_count(page) > 1 {
                        self.dirty.push(page_idx);
                    }
                    Arc::make_mut(page)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    if tracking {
                        self.dirty.push(page_idx);
                    }
                    self.resident += 1;
                    Arc::make_mut(e.insert(Arc::new([0; PAGE_SIZE as usize])))
                }
            }
        }
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        // Fast path: a resident page answers directly (a resident page
        // is mapped by definition).
        if let Some(p) = self.page(addr / PAGE_SIZE) {
            return Ok(p[(addr % PAGE_SIZE) as usize]);
        }
        if self.in_mapped_ranges(addr) {
            Ok(0)
        } else {
            Err(MemError::Unmapped { addr })
        }
    }

    /// Writes one byte. Writes to pages that were never mapped or
    /// written fault, like a wild store would.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, val: u8) -> Result<(), MemError> {
        if self.is_protected(addr) {
            return Err(MemError::WriteProtected { addr });
        }
        if !self.is_mapped(addr) {
            return Err(MemError::Unmapped { addr });
        }
        self.ensure_page(addr / PAGE_SIZE)[(addr % PAGE_SIZE) as usize] = val;
        Ok(())
    }

    /// Writes one byte ignoring write protection — used only when the
    /// loader materializes the initial image.
    pub fn loader_write_u8(&mut self, addr: u64, val: u8) {
        self.ensure_page(addr / PAGE_SIZE)[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Reads a little-endian unsigned integer of `size` ∈ {1,2,4,8}.
    #[inline]
    pub fn read_uint(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr % PAGE_SIZE;
        // Fast path: the whole access lies within one resident page —
        // one lookup instead of one per byte. (A resident page is
        // mapped for its full extent, so no per-byte check is needed.)
        if off + size <= PAGE_SIZE {
            if let Some(p) = self.page(addr / PAGE_SIZE) {
                let off = off as usize;
                // Size-specialized little-endian reads: the dynamic
                // byte loop defeats unrolling and this is the hottest
                // path in the VM.
                return Ok(match size {
                    8 => u64::from_le_bytes(p[off..off + 8].try_into().expect("len 8")),
                    4 => u32::from_le_bytes(p[off..off + 4].try_into().expect("len 4")) as u64,
                    2 => u16::from_le_bytes(p[off..off + 2].try_into().expect("len 2")) as u64,
                    _ => p[off] as u64,
                });
            }
            // Page not materialized: reads as zero iff the *whole*
            // access is mapped — an access straddling the end of a
            // mapped range must fault at the exact offending byte,
            // which the byte loop below reports.
            if self.span_mapped(addr, addr + size) {
                return Ok(0);
            }
        }
        let mut v: u64 = 0;
        for i in 0..size {
            v |= (self.read_u8(addr + i)? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes a little-endian unsigned integer of `size` ∈ {1,2,4,8}.
    #[inline]
    pub fn write_uint(&mut self, addr: u64, val: u64, size: u64) -> Result<(), MemError> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let off = addr % PAGE_SIZE;
        // Fast path only when the whole access is trivially clean: no
        // protected overlap, and either a resident page or a fully
        // mapped span. Anything else falls through to the per-byte
        // loop, which reports the exact faulting byte with the same
        // error the seed semantics produced.
        if off + size <= PAGE_SIZE && !self.span_protected(addr, addr + size) {
            if let Some(p) = self.page_mut(addr / PAGE_SIZE) {
                write_le(p, off as usize, val, size);
                return Ok(());
            }
            if self.span_mapped(addr, addr + size) {
                let page = self.ensure_page(addr / PAGE_SIZE);
                write_le(page, off as usize, val, size);
                return Ok(());
            }
        }
        for i in 0..size {
            self.write_u8(addr + i, (val >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Loader variant of [`write_uint`](Self::write_uint).
    pub fn loader_write_uint(&mut self, addr: u64, val: u64, size: u64) {
        for i in 0..size {
            self.loader_write_u8(addr + i, (val >> (8 * i)) as u8);
        }
    }

    /// Checks every byte of `[start, start+len)` is readable, without
    /// materializing anything; reports the first unmapped byte.
    fn check_readable(&self, start: u64, len: u64) -> Result<(), MemError> {
        let mut off = 0u64;
        while off < len {
            let addr = start + off;
            let page_off = addr % PAGE_SIZE;
            let chunk = (PAGE_SIZE - page_off).min(len - off);
            if self.page(addr / PAGE_SIZE).is_none() && !self.span_mapped(addr, addr + chunk) {
                // Mixed chunk: find the exact faulting byte.
                for i in 0..chunk {
                    if !self.in_mapped_ranges(addr + i) {
                        return Err(MemError::Unmapped { addr: addr + i });
                    }
                }
            }
            off += chunk;
        }
        Ok(())
    }

    /// Copies `len` bytes from `src` to `dst` with memmove semantics.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), MemError> {
        // Validate the source *before* allocating the gather buffer: a
        // corrupted (huge) length must fault at its first unmapped byte
        // rather than aborting the host with an oversized allocation.
        self.check_readable(src, len)?;
        // Gather-then-scatter gives memmove semantics for overlap; the
        // page-chunked loops avoid per-byte page lookups. The buffer is
        // bounded by the validated (hence actually mapped) span.
        let mut bytes = vec![0u8; len as usize];
        let mut off = 0u64;
        while off < len {
            let addr = src + off;
            let page_off = addr % PAGE_SIZE;
            let chunk = (PAGE_SIZE - page_off).min(len - off) as usize;
            let out = &mut bytes[off as usize..off as usize + chunk];
            if let Some(p) = self.page(addr / PAGE_SIZE) {
                out.copy_from_slice(&p[page_off as usize..page_off as usize + chunk]);
            } else {
                out.fill(0); // validated mapped-but-unmaterialized
            }
            off += chunk as u64;
        }
        self.write_bytes_chunked(dst, &bytes)
    }

    /// Fills `[dst, dst+len)` with `byte` — page-chunked, allocation
    /// free (guest-controlled lengths must not size host allocations).
    pub fn fill(&mut self, dst: u64, byte: u8, len: u64) -> Result<(), MemError> {
        let mut off = 0u64;
        while off < len {
            let addr = dst + off;
            let page_off = (addr % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE - page_off as u64).min(len - off) as usize;
            if self.chunk_cleanly_writable(addr, chunk) {
                let page = self.ensure_page(addr / PAGE_SIZE);
                page[page_off..page_off + chunk].fill(byte);
            } else {
                // Per-byte semantics: the valid prefix is written, then
                // the first faulting byte reports its exact address.
                for i in 0..chunk as u64 {
                    self.write_u8(addr + i, byte)?;
                }
            }
            off += chunk as u64;
        }
        Ok(())
    }

    /// True when a page-local chunk can be written without per-byte
    /// checks: no protected overlap, and either fully inside a mapped
    /// range or on an already-resident page.
    fn chunk_cleanly_writable(&self, addr: u64, chunk: usize) -> bool {
        let chunk_end = addr + chunk as u64;
        !self.span_protected(addr, chunk_end)
            && (self.span_mapped(addr, chunk_end) || self.page(addr / PAGE_SIZE).is_some())
    }

    /// Page-chunked write of a byte slice with the same fault semantics
    /// as per-byte [`write_u8`](Self::write_u8): the error reports the
    /// first faulting byte's address.
    fn write_bytes_chunked(&mut self, dst: u64, bytes: &[u8]) -> Result<(), MemError> {
        let mut off = 0usize;
        while off < bytes.len() {
            let addr = dst + off as u64;
            let page_off = (addr % PAGE_SIZE) as usize;
            let chunk = (PAGE_SIZE as usize - page_off).min(bytes.len() - off);
            if self.chunk_cleanly_writable(addr, chunk) {
                let page = self.ensure_page(addr / PAGE_SIZE);
                page[page_off..page_off + chunk].copy_from_slice(&bytes[off..off + chunk]);
            } else {
                for i in 0..chunk {
                    self.write_u8(addr + i as u64, bytes[off + i])?;
                }
            }
            off += chunk;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    pub fn read_cstr(&self, addr: u64, max: u64) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Captures the current image as the restore baseline and turns on
    /// dirty tracking in the write chokepoints.
    ///
    /// Cheap in memory: every resident page is shared with the
    /// baseline by `Arc` clone, so capture costs one refcount bump and
    /// one map entry per page, not a byte copy. The scalars and range
    /// sets (`protected`, `mapped`) are cloned since runs can grow
    /// them (`malloc` maps a range per allocation).
    ///
    /// Called by the machine once, right after `load()` — see
    /// `Machine::boot` in `levee-vm` — and recapturing simply replaces
    /// the baseline with the current image.
    pub fn capture_snapshot(&mut self) {
        let mut pages = HashMap::with_capacity_and_hasher(self.resident, FastHash::default());
        for (idx, slot) in self.low.iter().enumerate() {
            if let Some(page) = slot {
                pages.insert(idx as u64, Arc::clone(page));
            }
        }
        for (&idx, page) in &self.high_pages {
            pages.insert(idx, Arc::clone(page));
        }
        self.baseline = Some(Box::new(MemBaseline {
            pages,
            resident: self.resident,
            protected: self.protected.clone(),
            mapped: self.mapped.clone(),
        }));
        self.dirty.clear();
        self.ranges_dirty = false;
    }

    /// Reverts every page the last run dirtied back to the captured
    /// baseline, leaving the image bit-identical to the moment of
    /// [`capture_snapshot`](Self::capture_snapshot).
    ///
    /// Cost is proportional to what the run touched, not to the image:
    /// baseline pages are re-shared by `Arc` clone (the run's private
    /// copy is dropped), run-materialized pages are unmapped. Returns
    /// `(pages_dirtied, bytes_restored)` where `bytes_restored` counts
    /// a page size per baseline page reverted (dropped run-only pages
    /// restore no bytes).
    ///
    /// # Panics
    ///
    /// Panics if no snapshot was captured — restoring without a
    /// baseline is a machine lifecycle bug, not a recoverable state.
    pub fn restore_snapshot(&mut self) -> (u64, u64) {
        let baseline = self.baseline.take().expect("no baseline captured");
        let pages_dirtied = self.dirty.len() as u64;
        let mut bytes_restored = 0u64;
        for idx in std::mem::take(&mut self.dirty) {
            let restored = baseline.pages.get(&idx).map(Arc::clone);
            if restored.is_some() {
                bytes_restored += PAGE_SIZE;
            }
            if idx < LOW_PAGES {
                // Dirty low pages were materialized, so the table is
                // allocated and covers `idx`.
                self.low[idx as usize] = restored;
            } else {
                match restored {
                    Some(page) => drop(self.high_pages.insert(idx, page)),
                    None => drop(self.high_pages.remove(&idx)),
                }
            }
        }
        self.resident = baseline.resident;
        if self.ranges_dirty {
            self.protected = baseline.protected.clone();
            self.mapped = baseline.mapped.clone();
            self.ranges_dirty = false;
        }
        self.baseline = Some(baseline);
        (pages_dirtied, bytes_restored)
    }

    /// True once [`capture_snapshot`](Self::capture_snapshot) has run.
    pub fn has_snapshot(&self) -> bool {
        self.baseline.is_some()
    }

    /// Number of pages held by the captured baseline (0 without one).
    pub fn snapshot_pages(&self) -> usize {
        self.baseline.as_ref().map_or(0, |b| b.pages.len())
    }

    /// Bytes the snapshot holds *privately* — baseline pages no longer
    /// shared with the live image because the current run dirtied them
    /// (their `Arc` strong count dropped to 1, the baseline's own).
    ///
    /// This is the snapshot's true incremental footprint: clean pages
    /// are physically shared and already counted by
    /// [`resident_bytes`](Self::resident_bytes), so
    /// `resident_bytes() + snapshot_private_bytes()` is the whole
    /// image's cost with no double counting.
    pub fn snapshot_private_bytes(&self) -> u64 {
        self.baseline.as_ref().map_or(0, |b| {
            b.pages
                .values()
                .filter(|p| Arc::strong_count(p) == 1)
                .count() as u64
                * PAGE_SIZE
        })
    }

    /// Number of resident (materialized) pages in the live image.
    ///
    /// Pages shared copy-on-write with a captured snapshot are counted
    /// once: the baseline's `Arc` clones alias the same allocations,
    /// so residency here *is* the physical footprint of the live image
    /// (see [`snapshot_private_bytes`](Self::snapshot_private_bytes)
    /// for the snapshot's own increment).
    pub fn resident_pages(&self) -> usize {
        self.resident
    }

    /// Resident bytes (pages × page size) — the denominator of the
    /// memory-overhead experiments. Snapshot-shared pages are counted
    /// once; see [`resident_pages`](Self::resident_pages).
    pub fn resident_bytes(&self) -> u64 {
        self.resident as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip_little_endian() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 4096);
        m.write_uint(0x1000, 0x1122_3344_5566_7788, 8).unwrap();
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0x88); // little-endian
        assert_eq!(m.read_uint(0x1004, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn unmapped_read_faults() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0xdead), Err(MemError::Unmapped { addr: 0xdead }));
    }

    #[test]
    fn mapped_zero_reads_as_zero() {
        let mut m = Memory::new();
        m.map_zero(0x8000, 4096);
        assert_eq!(m.read_uint(0x8000, 8).unwrap(), 0);
        assert!(m.read_u8(0x7fff).is_err());
    }

    #[test]
    fn word_read_straddling_mapped_range_end_faults() {
        let mut m = Memory::new();
        // A byte-granular range, like a small heap allocation's.
        m.map_zero(0x1000, 8);
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 0);
        // A read crossing the range's end on a non-resident page faults
        // at the first unmapped byte, exactly like the per-byte path.
        assert_eq!(
            m.read_uint(0x1004, 8),
            Err(MemError::Unmapped { addr: 0x1008 })
        );
        // A straddling *write* materializes the page byte by byte: once
        // the first in-range byte faults the page in, the rest of the
        // page counts as mapped (the per-byte semantics the VM has
        // always had), so the write — and subsequent reads through the
        // now-resident page — succeed.
        assert_eq!(m.write_uint(0x1004, 0xff, 8), Ok(()));
        assert_eq!(m.read_uint(0x1004, 8).unwrap(), 0xff);
    }

    #[test]
    fn huge_corrupted_lengths_trap_without_host_allocation() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 64);
        // An attacker-corrupted length must fault at the first
        // unwritable byte, not size a host allocation. (The first
        // in-range byte materializes the page and page residency counts
        // as mapped — per-byte seed semantics — so the fault lands at
        // the next page boundary.)
        assert_eq!(
            m.fill(0x1000, 0x41, 1 << 40),
            Err(MemError::Unmapped { addr: 0x2000 })
        );
        // The in-range prefix of the failed fill was written (the seed
        // wrote until the first fault too), materializing the page —
        // so the copy below faults at the page boundary.
        assert_eq!(m.read_u8(0x1000).unwrap(), 0x41);
        assert_eq!(
            m.copy(0x9_0000, 0x1000, u64::MAX / 2),
            Err(MemError::Unmapped { addr: 0x2000 })
        );
    }

    #[test]
    fn word_write_straddling_protection_boundary_faults() {
        let mut m = Memory::new();
        m.map_zero(0x2000, 64);
        m.protect(0x2008, 8);
        // First byte unprotected, later bytes protected: the write must
        // fault at the first protected byte.
        assert_eq!(
            m.write_uint(0x2004, 1, 8),
            Err(MemError::WriteProtected { addr: 0x2008 })
        );
    }

    #[test]
    fn write_protection_blocks_writes_but_not_loader() {
        let mut m = Memory::new();
        m.loader_write_uint(0x40_0000, 0xfeed, 8);
        m.protect(0x40_0000, 4096);
        assert_eq!(
            m.write_u8(0x40_0000, 1),
            Err(MemError::WriteProtected { addr: 0x40_0000 })
        );
        // Unmapped writes fault like wild stores.
        assert_eq!(
            m.write_u8(0x9999_0000, 1),
            Err(MemError::Unmapped { addr: 0x9999_0000 })
        );
        m.loader_write_u8(0x40_0000, 7); // loader bypasses protection
        assert_eq!(m.read_u8(0x40_0000).unwrap(), 7);
    }

    #[test]
    fn copy_handles_overlap() {
        let mut m = Memory::new();
        m.map_zero(0x100, 256);
        for i in 0..8u64 {
            m.write_u8(0x100 + i, i as u8).unwrap();
        }
        m.copy(0x102, 0x100, 8).unwrap(); // overlapping forward copy
        assert_eq!(m.read_u8(0x102).unwrap(), 0);
        assert_eq!(m.read_u8(0x109).unwrap(), 7);
        assert_eq!(m.read_u8(0x103).unwrap(), 1);
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new();
        m.map_zero(0x200, 256);
        for (i, b) in b"hello\0world".iter().enumerate() {
            m.write_u8(0x200 + i as u64, *b).unwrap();
        }
        assert_eq!(m.read_cstr(0x200, 64).unwrap(), b"hello");
        assert_eq!(m.read_cstr(0x206, 5).unwrap(), b"world");
    }

    #[test]
    fn fill_and_resident_accounting() {
        let mut m = Memory::new();
        m.map_zero(0x3000, 4096);
        m.fill(0x3000, 0xAB, 16).unwrap();
        assert_eq!(m.read_u8(0x300f).unwrap(), 0xAB);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.resident_bytes(), PAGE_SIZE);
    }

    #[test]
    fn snapshot_restore_reverts_only_dirtied_pages() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 3 * 4096);
        m.write_uint(0x1000, 0xAAAA, 8).unwrap(); // page 1: baseline data
        m.write_uint(0x2000, 0xBBBB, 8).unwrap(); // page 2: baseline data
        m.capture_snapshot();
        assert!(m.has_snapshot());
        assert_eq!(m.snapshot_pages(), 2);

        // A clean run restores nothing.
        assert_eq!(m.restore_snapshot(), (0, 0));

        // Dirty one baseline page and materialize one run-only page.
        m.write_uint(0x1000, 0xDEAD, 8).unwrap();
        m.write_uint(0x3000, 0xC0DE, 8).unwrap();
        let (pages_dirtied, bytes_restored) = m.restore_snapshot();
        assert_eq!(pages_dirtied, 2);
        assert_eq!(bytes_restored, PAGE_SIZE); // only page 1 came from the baseline
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 0xAAAA);
        assert_eq!(m.read_uint(0x2000, 8).unwrap(), 0xBBBB);
        // The run-only page is gone; its mapped range reads as zero again.
        assert_eq!(m.read_uint(0x3000, 8).unwrap(), 0);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn snapshot_restore_reverts_run_mapped_ranges_and_protection() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 4096);
        m.write_u8(0x1000, 1).unwrap();
        m.capture_snapshot();

        // A run maps a fresh range (like malloc does) and writes it.
        m.map_zero(0x8000, 4096);
        m.write_u8(0x8000, 7).unwrap();
        assert_eq!(m.read_u8(0x8000).unwrap(), 7);
        m.restore_snapshot();
        // After restore the range is unmapped again: reads fault.
        assert_eq!(m.read_u8(0x8000), Err(MemError::Unmapped { addr: 0x8000 }));

        // Same for a high-tier (safe region) page.
        let high = 1u64 << 33;
        m.map_zero(high, 4096);
        m.write_u8(high, 9).unwrap();
        m.restore_snapshot();
        assert_eq!(m.read_u8(high), Err(MemError::Unmapped { addr: high }));
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn snapshot_restore_is_repeatable_and_bit_identical() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 8 * 4096);
        for p in 0..8u64 {
            m.write_uint(0x1000 + p * 4096, 0x100 + p, 8).unwrap();
        }
        m.capture_snapshot();
        for round in 0..3u64 {
            for p in 0..8u64 {
                m.write_uint(0x1000 + p * 4096, round.wrapping_mul(p), 8)
                    .unwrap();
            }
            let (pages_dirtied, bytes_restored) = m.restore_snapshot();
            assert_eq!(pages_dirtied, 8);
            assert_eq!(bytes_restored, 8 * PAGE_SIZE);
            for p in 0..8u64 {
                assert_eq!(m.read_uint(0x1000 + p * 4096, 8).unwrap(), 0x100 + p);
            }
        }
    }

    #[test]
    fn snapshot_shared_pages_are_counted_once() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 2 * 4096);
        m.write_u8(0x1000, 1).unwrap();
        m.write_u8(0x2000, 2).unwrap();
        let before = m.resident_bytes();
        m.capture_snapshot();
        // Capture shares pages instead of copying: residency is
        // unchanged and the snapshot holds nothing private yet.
        assert_eq!(m.resident_bytes(), before);
        assert_eq!(m.snapshot_private_bytes(), 0);
        // Dirtying a page splits it: the baseline's pre-write copy is
        // now the snapshot's own.
        m.write_u8(0x1000, 0xFF).unwrap();
        assert_eq!(m.snapshot_private_bytes(), PAGE_SIZE);
        assert_eq!(m.resident_bytes(), before);
        // Restore re-shares it.
        m.restore_snapshot();
        assert_eq!(m.snapshot_private_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "no baseline captured")]
    fn restore_without_capture_is_a_lifecycle_bug() {
        let mut m = Memory::new();
        m.restore_snapshot();
    }
}
