//! Sparse byte-addressable memory with region permissions.
//!
//! One flat 64-bit space backs both the regular region and the safe
//! region; *who is allowed to touch what* is decided by the caller (the
//! machine) according to the isolation model — this module only provides
//! paging, endianness and write protection of code/rodata.

use std::collections::HashMap;

/// Page size of the backing store.
pub const PAGE_SIZE: u64 = 4096;

/// Why a raw memory access failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Read of a page that was never written or reserved (wild pointer).
    Unmapped { addr: u64 },
    /// Write to write-protected memory (code, rodata).
    WriteProtected { addr: u64 },
}

/// Sparse paged memory.
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE as usize]>>,
    /// Write-protected address ranges (code segment, read-only globals).
    protected: Vec<(u64, u64)>,
    /// Ranges that reads may touch without an explicit prior write
    /// (mapped-but-zero regions: stacks, bss). Reads elsewhere fault.
    mapped: Vec<(u64, u64)>,
}

impl Memory {
    /// Creates an empty memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `[start, start+len)` write-protected (returns nothing; the
    /// protection is enforced on every subsequent write).
    pub fn protect(&mut self, start: u64, len: u64) {
        self.protected.push((start, start.saturating_add(len)));
    }

    /// Maps `[start, start+len)` as readable zero-initialized memory.
    pub fn map_zero(&mut self, start: u64, len: u64) {
        self.mapped.push((start, start.saturating_add(len)));
    }

    fn is_protected(&self, addr: u64) -> bool {
        self.protected.iter().any(|(s, e)| (*s..*e).contains(&addr))
    }

    fn is_mapped(&self, addr: u64) -> bool {
        self.mapped.iter().any(|(s, e)| (*s..*e).contains(&addr))
            || self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        if !self.is_mapped(addr) {
            return Err(MemError::Unmapped { addr });
        }
        Ok(self
            .pages
            .get(&(addr / PAGE_SIZE))
            .map(|p| p[(addr % PAGE_SIZE) as usize])
            .unwrap_or(0))
    }

    /// Writes one byte. Writes to pages that were never mapped or
    /// written fault, like a wild store would.
    pub fn write_u8(&mut self, addr: u64, val: u8) -> Result<(), MemError> {
        if self.is_protected(addr) {
            return Err(MemError::WriteProtected { addr });
        }
        if !self.is_mapped(addr) {
            return Err(MemError::Unmapped { addr });
        }
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = val;
        Ok(())
    }

    /// Writes one byte ignoring write protection — used only when the
    /// loader materializes the initial image.
    pub fn loader_write_u8(&mut self, addr: u64, val: u8) {
        let page = self
            .pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| Box::new([0; PAGE_SIZE as usize]));
        page[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Reads a little-endian unsigned integer of `size` ∈ {1,2,4,8}.
    pub fn read_uint(&self, addr: u64, size: u64) -> Result<u64, MemError> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let mut v: u64 = 0;
        for i in 0..size {
            v |= (self.read_u8(addr + i)? as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes a little-endian unsigned integer of `size` ∈ {1,2,4,8}.
    pub fn write_uint(&mut self, addr: u64, val: u64, size: u64) -> Result<(), MemError> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        for i in 0..size {
            self.write_u8(addr + i, (val >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Loader variant of [`write_uint`](Self::write_uint).
    pub fn loader_write_uint(&mut self, addr: u64, val: u64, size: u64) {
        for i in 0..size {
            self.loader_write_u8(addr + i, (val >> (8 * i)) as u8);
        }
    }

    /// Copies `len` bytes from `src` to `dst` with memmove semantics.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), MemError> {
        let bytes: Result<Vec<u8>, _> = (0..len).map(|i| self.read_u8(src + i)).collect();
        let bytes = bytes?;
        for (i, b) in bytes.into_iter().enumerate() {
            self.write_u8(dst + i as u64, b)?;
        }
        Ok(())
    }

    /// Fills `[dst, dst+len)` with `byte`.
    pub fn fill(&mut self, dst: u64, byte: u8, len: u64) -> Result<(), MemError> {
        for i in 0..len {
            self.write_u8(dst + i, byte)?;
        }
        Ok(())
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    pub fn read_cstr(&self, addr: u64, max: u64) -> Result<Vec<u8>, MemError> {
        let mut out = Vec::new();
        for i in 0..max {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Number of resident (materialized) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Resident bytes (pages × page size) — the denominator of the
    /// memory-overhead experiments.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrip_little_endian() {
        let mut m = Memory::new();
        m.map_zero(0x1000, 4096);
        m.write_uint(0x1000, 0x1122_3344_5566_7788, 8).unwrap();
        assert_eq!(m.read_uint(0x1000, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0x1000).unwrap(), 0x88); // little-endian
        assert_eq!(m.read_uint(0x1004, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn unmapped_read_faults() {
        let m = Memory::new();
        assert_eq!(
            m.read_u8(0xdead),
            Err(MemError::Unmapped { addr: 0xdead })
        );
    }

    #[test]
    fn mapped_zero_reads_as_zero() {
        let mut m = Memory::new();
        m.map_zero(0x8000, 4096);
        assert_eq!(m.read_uint(0x8000, 8).unwrap(), 0);
        assert!(m.read_u8(0x7fff).is_err());
    }

    #[test]
    fn write_protection_blocks_writes_but_not_loader() {
        let mut m = Memory::new();
        m.loader_write_uint(0x40_0000, 0xfeed, 8);
        m.protect(0x40_0000, 4096);
        assert_eq!(
            m.write_u8(0x40_0000, 1),
            Err(MemError::WriteProtected { addr: 0x40_0000 })
        );
        // Unmapped writes fault like wild stores.
        assert_eq!(m.write_u8(0x9999_0000, 1), Err(MemError::Unmapped { addr: 0x9999_0000 }));
        m.loader_write_u8(0x40_0000, 7); // loader bypasses protection
        assert_eq!(m.read_u8(0x40_0000).unwrap(), 7);
    }

    #[test]
    fn copy_handles_overlap() {
        let mut m = Memory::new();
        m.map_zero(0x100, 256);
        for i in 0..8u64 {
            m.write_u8(0x100 + i, i as u8).unwrap();
        }
        m.copy(0x102, 0x100, 8).unwrap(); // overlapping forward copy
        assert_eq!(m.read_u8(0x102).unwrap(), 0);
        assert_eq!(m.read_u8(0x109).unwrap(), 7);
        assert_eq!(m.read_u8(0x103).unwrap(), 1);
    }

    #[test]
    fn cstr_reading() {
        let mut m = Memory::new();
        m.map_zero(0x200, 256);
        for (i, b) in b"hello\0world".iter().enumerate() {
            m.write_u8(0x200 + i as u64, *b).unwrap();
        }
        assert_eq!(m.read_cstr(0x200, 64).unwrap(), b"hello");
        assert_eq!(m.read_cstr(0x206, 5).unwrap(), b"world");
    }

    #[test]
    fn fill_and_resident_accounting() {
        let mut m = Memory::new();
        m.map_zero(0x3000, 4096);
        m.fill(0x3000, 0xAB, 16).unwrap();
        assert_eq!(m.read_u8(0x300f).unwrap(), 0xAB);
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.resident_bytes(), PAGE_SIZE);
    }
}
