//! `levee-probe` — the host-side execution profiler and structured
//! tracer behind [`crate::VmConfig::profile`].
//!
//! The paper's whole evaluation is *attribution*: which functions,
//! which check sites and which memory classes pay the protection
//! overhead (Tables 2–3, §5.2). This module turns a run's aggregate
//! [`crate::ExecStats`] into that shape:
//!
//! * **per-opcode** dispatch counts and cycle attribution (the six
//!   fused superinstructions included, so fusion coverage is
//!   measurable at runtime, not just in `levee_bc::FuseStats` plans),
//! * **per-function** inclusive/exclusive cycle + instruction + check
//!   attribution, driven off the `push_frame`/`pop_frame` seam shared
//!   by both engines,
//! * **per-CPI-check-site** hit/miss counters, keyed by a deterministic
//!   per-function numbering of the instrumentation's `Check`/`FnCheck`
//!   ops (identical between the step walker and the — possibly fused —
//!   bytecode stream, because compilation and fusion both preserve
//!   program order),
//! * a bounded **ring buffer of typed trace events** (call, return,
//!   trap, check, store op, page fault), exportable as Chrome
//!   trace-event JSON for flamegraph-style inspection.
//!
//! The non-negotiable invariant: the profiler is *observation only*.
//! Every hook reads machine state (`stats`, frame identity) and writes
//! exclusively into the (crate-private) `Profiler`'s own buffers —
//! never into the cost
//! model, the cache, the store or the provenance table — so a run with
//! profiling on is bit-identical in simulated cycles, instructions,
//! traps and touch sequences to the same run with profiling off. The
//! `diff_fuzz` and `engines` differential suites enforce this
//! counter-for-counter.

use std::collections::HashMap;

use levee_bc::{op_len, BcModule, Op};
use levee_ir::prelude::*;

use crate::stats::ExecStats;

/// Number of bytecode opcodes (`levee_bc::Op` discriminants `0..31`).
pub const N_OPS: usize = 31;

/// Pseudo-opcode slot attributing the cycles charged before the first
/// dispatch (loading `main`'s frame: call cost, return-slot write…).
const STARTUP_SLOT: usize = N_OPS;

/// Default capacity of the trace-event ring buffer.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

// ---------------------------------------------------------------------------
// Tagged memory-touch records (the promoted `Machine::mem_trace`)
// ---------------------------------------------------------------------------

/// Direction of one simulated memory touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TouchKind {
    /// The touch read simulated memory.
    Read,
    /// The touch wrote simulated memory.
    Write,
}

impl TouchKind {
    /// Short label used in reports ("R" / "W").
    pub fn label(self) -> &'static str {
        match self {
            TouchKind::Read => "R",
            TouchKind::Write => "W",
        }
    }
}

/// One entry of the memory touch log: every simulated access the cache
/// model sees, tagged with its direction and access width in bytes.
///
/// Differential suites diff the *address projection* of two logs (see
/// [`touch_addrs`]) to prove two configurations perform identical
/// access sequences; the tags exist for attribution — classifying
/// traffic as loads vs stores and by width without re-running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TouchRecord {
    /// The touched simulated address.
    pub addr: u64,
    /// Read or write.
    pub kind: TouchKind,
    /// Access width in bytes (1–16; safe-store slots are 16).
    pub width: u8,
}

/// Projects a tagged touch log onto its address sequence — the shape
/// the touch-log *sequence* diff tests compare (tags are attribution
/// metadata; the architectural claim is about addresses in order).
pub fn touch_addrs(records: &[TouchRecord]) -> Vec<u64> {
    records.iter().map(|r| r.addr).collect()
}

// ---------------------------------------------------------------------------
// Typed trace events
// ---------------------------------------------------------------------------

/// The kind of one [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A frame was pushed (`a` = callee `FuncId`, `b` = stack depth).
    Call,
    /// A frame was popped (`a` = returning `FuncId`, `b` = stack depth
    /// before the pop).
    Return,
    /// The run ended in a trap (`a`/`b` unused; recorded at run end).
    Trap,
    /// A CPI check-site execution (`a` = `FuncId`, `b` = site index).
    Check,
    /// A safe-pointer-store operation (`a` = address, `b` = 0 for a
    /// store, 1 for a load).
    StoreOp,
    /// A safe-store page fault was charged (`a` = approximate address).
    PageFault,
}

impl TraceEventKind {
    /// Event name used in the Chrome trace export.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Call => "call",
            TraceEventKind::Return => "return",
            TraceEventKind::Trap => "trap",
            TraceEventKind::Check => "check",
            TraceEventKind::StoreOp => "store_op",
            TraceEventKind::PageFault => "page_fault",
        }
    }
}

/// One structured trace event, timestamped in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened.
    pub kind: TraceEventKind,
    /// Simulated-cycle timestamp at the moment of the event.
    pub cycles: u64,
    /// First payload word (meaning depends on [`TraceEvent::kind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Bounded ring of [`TraceEvent`]s: the newest `capacity` events are
/// kept; older ones are dropped (and counted) rather than growing the
/// buffer without bound on long runs.
#[derive(Debug, Clone)]
struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest event once the buffer has wrapped.
    start: usize,
    dropped: u64,
}

impl TraceRing {
    fn new(cap: usize) -> Self {
        TraceRing {
            buf: Vec::new(),
            cap: cap.max(1),
            start: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in chronological order.
    fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }
}

// ---------------------------------------------------------------------------
// The profiler
// ---------------------------------------------------------------------------

/// One live frame on the profiler's shadow stack.
#[derive(Debug, Clone, Copy)]
struct ProbeFrame {
    func: u32,
    entry_cycles: u64,
    entry_insts: u64,
    entry_checks: u64,
    /// Inclusive totals of direct callees, accumulated as they return
    /// (inclusive − children = exclusive).
    child_cycles: u64,
    child_insts: u64,
    child_checks: u64,
}

/// Per-function accumulator.
#[derive(Debug, Clone, Copy, Default)]
struct FuncAcc {
    calls: u64,
    incl_cycles: u64,
    excl_cycles: u64,
    incl_insts: u64,
    excl_insts: u64,
    incl_checks: u64,
    excl_checks: u64,
    /// Live occurrences on the shadow stack (recursion guard: inclusive
    /// totals count only the outermost occurrence).
    active: u32,
}

/// The execution profiler: host-side observation state attached to a
/// machine when [`crate::VmConfig::profile`] is on.
///
/// All methods are cheap bookkeeping on the profiler's own buffers;
/// none touches the simulated cost model (see the module docs for the
/// neutrality argument).
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    op_counts: [u64; N_OPS + 1],
    op_cycles: [u64; N_OPS + 1],
    /// The op currently executing and the cycle count at its dispatch;
    /// closed (its cycle delta attributed) by the next dispatch.
    pending: Option<(usize, u64)>,
    funcs: Vec<FuncAcc>,
    stack: Vec<ProbeFrame>,
    /// `(func, block, ip) → site index` for the step walker's CPI
    /// `Check`/`FnCheck` ops, numbered per function in program order.
    ir_sites: HashMap<(u32, u32, u32), u32>,
    /// Per-function `pc → site index` maps for the (possibly fused)
    /// bytecode stream — the same numbering as [`Profiler::ir_sites`],
    /// because compilation and fusion preserve program order. Built on
    /// first contact with the compiled module.
    bc_sites: Option<Vec<HashMap<u32, u32>>>,
    /// `(func, site) → (attempts, passes)`.
    site_hits: HashMap<(u32, u32), (u64, u64)>,
    ring: TraceRing,
}

impl Profiler {
    /// Builds a profiler for `module`: numbers every CPI check site
    /// (per function, in program order) so the walker's `(block, ip)`
    /// coordinates resolve to stable site ids.
    pub(crate) fn new(module: &Module) -> Self {
        let mut ir_sites = HashMap::new();
        for (fid, f) in module.iter_funcs() {
            let mut next = 0u32;
            for (bid, block) in f.iter_blocks() {
                for (ip, inst) in block.insts.iter().enumerate() {
                    if let Inst::Cpi(CpiOp::Check { .. } | CpiOp::FnCheck { .. }) = inst {
                        ir_sites.insert((fid.0, bid.0, ip as u32), next);
                        next += 1;
                    }
                }
            }
        }
        Profiler {
            op_counts: [0; N_OPS + 1],
            op_cycles: [0; N_OPS + 1],
            pending: None,
            funcs: vec![FuncAcc::default(); module.funcs.len()],
            stack: Vec::new(),
            ir_sites,
            bc_sites: None,
            site_hits: HashMap::new(),
            ring: TraceRing::new(DEFAULT_RING_CAPACITY),
        }
    }

    /// Numbers check sites in the compiled (possibly fused) bytecode:
    /// walks each function's stream by [`op_len`] and assigns site
    /// indices to check-shaped opcodes in stream order. Stream order
    /// equals IR program order (the compiler flattens blocks in order;
    /// fusion replaces adjacent pairs in place), so the ids agree with
    /// [`Profiler::ir_sites`].
    pub(crate) fn attach_bc(&mut self, bc: &BcModule) {
        if self.bc_sites.is_some() {
            return;
        }
        let mut per_func = Vec::with_capacity(bc.funcs.len());
        for f in &bc.funcs {
            let mut sites = HashMap::new();
            let mut next = 0u32;
            let mut pc = 0usize;
            while pc < f.code.len() {
                if matches!(
                    Op::from_u32(f.code[pc]),
                    Op::Check | Op::FnCheck | Op::CheckLoad | Op::CheckPtrLoad | Op::CheckedCall
                ) {
                    sites.insert(pc as u32, next);
                    next += 1;
                }
                pc += op_len(&f.code, pc);
            }
            per_func.push(sites);
        }
        self.bc_sites = Some(per_func);
    }

    fn close_pending(&mut self, now: u64) {
        if let Some((op, start)) = self.pending.take() {
            self.op_cycles[op] += now.saturating_sub(start);
        }
    }

    /// Marks the start of a run: cycles charged before the first
    /// dispatch (entering `main`) accrue to the startup pseudo-op, so
    /// per-op cycle totals sum exactly to the run's final cycle count.
    pub(crate) fn begin_run(&mut self, now: u64) {
        self.op_counts[STARTUP_SLOT] += 1;
        self.pending = Some((STARTUP_SLOT, now));
    }

    /// One dispatch: closes the previous op's cycle window at `now` and
    /// opens this one's. `op` is the `levee_bc::Op` discriminant (the
    /// walker maps IR instructions onto the same space).
    #[inline]
    pub(crate) fn dispatch(&mut self, op: usize, now: u64) {
        self.close_pending(now);
        self.op_counts[op] += 1;
        self.pending = Some((op, now));
    }

    /// A frame was pushed for `func` (hooked at the end of
    /// `push_frame`, so call-setup cost stays with the caller).
    pub(crate) fn enter(&mut self, func: u32, cycles: u64, insts: u64, checks: u64) {
        self.funcs[func as usize].calls += 1;
        self.funcs[func as usize].active += 1;
        self.ring.push(TraceEvent {
            kind: TraceEventKind::Call,
            cycles,
            a: func as u64,
            b: self.stack.len() as u64 + 1,
        });
        self.stack.push(ProbeFrame {
            func,
            entry_cycles: cycles,
            entry_insts: insts,
            entry_checks: checks,
            child_cycles: 0,
            child_insts: 0,
            child_checks: 0,
        });
    }

    /// A frame was popped (hooked in `pop_frame`, which covers returns,
    /// longjmp unwinds and the clean exit from `main`; return-sequence
    /// cost therefore stays with the callee).
    pub(crate) fn exit(&mut self, cycles: u64, insts: u64, checks: u64) {
        let Some(fr) = self.stack.pop() else {
            return;
        };
        let incl_c = cycles.saturating_sub(fr.entry_cycles);
        let incl_i = insts.saturating_sub(fr.entry_insts);
        let incl_k = checks.saturating_sub(fr.entry_checks);
        let acc = &mut self.funcs[fr.func as usize];
        if acc.active == 1 {
            // Outermost occurrence: recursion contributes inclusive
            // time exactly once.
            acc.incl_cycles += incl_c;
            acc.incl_insts += incl_i;
            acc.incl_checks += incl_k;
        }
        acc.active -= 1;
        acc.excl_cycles += incl_c.saturating_sub(fr.child_cycles);
        acc.excl_insts += incl_i.saturating_sub(fr.child_insts);
        acc.excl_checks += incl_k.saturating_sub(fr.child_checks);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += incl_c;
            parent.child_insts += incl_i;
            parent.child_checks += incl_k;
        }
        self.ring.push(TraceEvent {
            kind: TraceEventKind::Return,
            cycles,
            a: fr.func as u64,
            b: self.stack.len() as u64 + 1,
        });
    }

    /// Ends the run: closes the pending op at the final cycle count and
    /// force-exits frames that never returned (trap unwind), so every
    /// call has a matching return and attribution sums telescope.
    pub(crate) fn end_run(&mut self, cycles: u64, insts: u64, checks: u64, trapped: bool) {
        self.close_pending(cycles);
        while !self.stack.is_empty() {
            self.exit(cycles, insts, checks);
        }
        if trapped {
            self.ring.push(TraceEvent {
                kind: TraceEventKind::Trap,
                cycles,
                a: 0,
                b: 0,
            });
        }
    }

    fn check_attempt(&mut self, func: u32, site: u32, now: u64) {
        let e = self.site_hits.entry((func, site)).or_default();
        e.0 += 1;
        self.ring.push(TraceEvent {
            kind: TraceEventKind::Check,
            cycles: now,
            a: func as u64,
            b: site as u64,
        });
    }

    fn check_pass(&mut self, func: u32, site: u32) {
        if let Some(e) = self.site_hits.get_mut(&(func, site)) {
            e.1 += 1;
        }
    }

    /// A walker CPI check is about to run at `(func, block, ip)`.
    pub(crate) fn check_attempt_ir(&mut self, key: (u32, u32, u32), now: u64) {
        if let Some(&site) = self.ir_sites.get(&key) {
            self.check_attempt(key.0, site, now);
        }
    }

    /// The walker CPI check at `(func, block, ip)` passed.
    pub(crate) fn check_pass_ir(&mut self, key: (u32, u32, u32)) {
        if let Some(&site) = self.ir_sites.get(&key) {
            self.check_pass(key.0, site);
        }
    }

    /// A bytecode CPI check is about to run at `func`'s stream offset
    /// `pc` (the opcode word of a check-shaped instruction).
    pub(crate) fn check_attempt_bc(&mut self, func: u32, pc: u32, now: u64) {
        let site = self
            .bc_sites
            .as_ref()
            .and_then(|per| per.get(func as usize))
            .and_then(|m| m.get(&pc))
            .copied();
        if let Some(site) = site {
            self.check_attempt(func, site, now);
        }
    }

    /// The bytecode CPI check at (`func`, `pc`) passed.
    pub(crate) fn check_pass_bc(&mut self, func: u32, pc: u32) {
        let site = self
            .bc_sites
            .as_ref()
            .and_then(|per| per.get(func as usize))
            .and_then(|m| m.get(&pc))
            .copied();
        if let Some(site) = site {
            self.check_pass(func, site);
        }
    }

    /// A safe-pointer-store operation executed at `addr`.
    pub(crate) fn store_op(&mut self, cycles: u64, addr: u64, is_load: bool) {
        self.ring.push(TraceEvent {
            kind: TraceEventKind::StoreOp,
            cycles,
            a: addr,
            b: is_load as u64,
        });
    }

    /// A safe-store page fault was charged near `addr`.
    pub(crate) fn page_fault(&mut self, cycles: u64, addr: u64) {
        self.ring.push(TraceEvent {
            kind: TraceEventKind::PageFault,
            cycles,
            a: addr,
            b: 0,
        });
    }

    /// Snapshots the accumulated attribution into a serializable
    /// report, resolving function names through `module`.
    pub(crate) fn report(&self, module: &Module, stats: &ExecStats) -> ProfileReport {
        let mut ops: Vec<OpProfile> = (0..=N_OPS)
            .filter(|&i| self.op_counts[i] > 0 || self.op_cycles[i] > 0)
            .map(|i| OpProfile {
                name: if i == STARTUP_SLOT {
                    "(startup)".to_string()
                } else {
                    format!("{:?}", Op::from_u32(i as u32))
                },
                count: self.op_counts[i],
                cycles: self.op_cycles[i],
            })
            .collect();
        ops.sort_by(|a, b| b.cycles.cmp(&a.cycles).then(a.name.cmp(&b.name)));

        let func_names: Vec<String> = module.iter_funcs().map(|(_, f)| f.name.clone()).collect();
        let mut funcs: Vec<FuncProfile> = self
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.calls > 0)
            .map(|(i, a)| FuncProfile {
                name: func_names[i].clone(),
                calls: a.calls,
                incl_cycles: a.incl_cycles,
                excl_cycles: a.excl_cycles,
                incl_insts: a.incl_insts,
                excl_insts: a.excl_insts,
                incl_checks: a.incl_checks,
                excl_checks: a.excl_checks,
            })
            .collect();
        funcs.sort_by(|a, b| b.incl_cycles.cmp(&a.incl_cycles).then(a.name.cmp(&b.name)));

        let mut check_sites: Vec<CheckSiteProfile> = self
            .site_hits
            .iter()
            .map(|(&(func, site), &(attempts, passes))| CheckSiteProfile {
                func: func_names
                    .get(func as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("f{func}")),
                site,
                attempts,
                passes,
            })
            .collect();
        check_sites.sort_by(|a, b| {
            b.attempts
                .cmp(&a.attempts)
                .then(a.func.cmp(&b.func))
                .then(a.site.cmp(&b.site))
        });

        ProfileReport {
            total_cycles: stats.cycles,
            total_insts: stats.insts,
            ops,
            funcs,
            check_sites,
            func_names,
            events: self.ring.events(),
            dropped_events: self.ring.dropped,
            // The profiler doesn't see machine recycling; the machine
            // stamps its `last_reset_stats` in `profile_report`.
            reset: crate::stats::ResetStats::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// The report
// ---------------------------------------------------------------------------

/// Per-opcode attribution row (see [`ProfileReport::ops`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpProfile {
    /// Opcode name (`levee_bc::Op` debug name, or `"(startup)"` for the
    /// pre-dispatch prologue pseudo-row).
    pub name: String,
    /// Dispatch count.
    pub count: u64,
    /// Cycles attributed to this opcode's dispatch windows.
    pub cycles: u64,
}

/// Per-function attribution row (see [`ProfileReport::funcs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncProfile {
    /// Function name.
    pub name: String,
    /// Frames pushed for this function.
    pub calls: u64,
    /// Cycles inside this function including its callees (recursion
    /// counted once, at the outermost occurrence).
    pub incl_cycles: u64,
    /// Cycles inside this function excluding its callees.
    pub excl_cycles: u64,
    /// Instructions, inclusive.
    pub incl_insts: u64,
    /// Instructions, exclusive.
    pub excl_insts: u64,
    /// Checks executed, inclusive.
    pub incl_checks: u64,
    /// Checks executed, exclusive.
    pub excl_checks: u64,
}

/// Per-CPI-check-site hit/miss counters (see
/// [`ProfileReport::check_sites`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckSiteProfile {
    /// Enclosing function.
    pub func: String,
    /// Site index within the function (program order).
    pub site: u32,
    /// Times the check was reached.
    pub attempts: u64,
    /// Times it passed.
    pub passes: u64,
}

impl CheckSiteProfile {
    /// Failed attempts (at most one per run: a failed check traps).
    pub fn misses(&self) -> u64 {
        self.attempts - self.passes
    }
}

/// The profiling result of one run: per-opcode, per-function and
/// per-check-site attribution plus the trace-event ring.
///
/// Obtained from `Machine::profile_report` (or
/// `levee_core::session::RunReport::profile` at the embedding layer;
/// see also [`crate::ExecStats`] for the whole-run aggregates these
/// tables decompose). The invariant the differential suites pin down:
/// [`ProfileReport::op_cycle_total`] equals [`crate::ExecStats::cycles`]
/// exactly — attribution is a partition of the run, not a sample.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Final cycle count of the run (equals the sum over
    /// [`ProfileReport::ops`]).
    pub total_cycles: u64,
    /// Final instruction count of the run.
    pub total_insts: u64,
    /// Per-opcode rows, sorted by cycles descending.
    pub ops: Vec<OpProfile>,
    /// Per-function rows, sorted by inclusive cycles descending.
    pub funcs: Vec<FuncProfile>,
    /// Per-check-site rows, sorted by attempts descending.
    pub check_sites: Vec<CheckSiteProfile>,
    /// Function names by `FuncId` (resolves trace-event payloads).
    pub func_names: Vec<String>,
    /// The retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events dropped because the ring wrapped.
    pub dropped_events: u64,
    /// What re-arming the machine for this run cost (the machine's
    /// `last_reset_stats` at report time; all-zero when the machine
    /// was never reset). Host-side bookkeeping — reset cost never
    /// enters the cycle attribution above.
    pub reset: crate::stats::ResetStats,
}

impl ProfileReport {
    /// Sum of per-opcode cycle attribution — equals
    /// [`ProfileReport::total_cycles`] exactly (enforced by the
    /// `engine_compare --profile` gate).
    pub fn op_cycle_total(&self) -> u64 {
        self.ops.iter().map(|o| o.cycles).sum()
    }

    /// Dispatch count of the named opcode (0 when it never ran).
    pub fn op_count(&self, name: &str) -> u64 {
        self.ops
            .iter()
            .find(|o| o.name == name)
            .map_or(0, |o| o.count)
    }

    /// Renders the attribution tables as one JSON object (hand-rolled,
    /// like every serializer in this codebase). Trace events are *not*
    /// included — export them with
    /// [`ProfileReport::chrome_trace_json`].
    pub fn to_json(&self) -> String {
        let esc = |s: &str| {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        };
        let ops: Vec<String> = self
            .ops
            .iter()
            .map(|o| {
                format!(
                    "{{\"op\": {}, \"count\": {}, \"cycles\": {}}}",
                    esc(&o.name),
                    o.count,
                    o.cycles
                )
            })
            .collect();
        let funcs: Vec<String> = self
            .funcs
            .iter()
            .map(|f| {
                format!(
                    "{{\"func\": {}, \"calls\": {}, \"incl_cycles\": {}, \
                     \"excl_cycles\": {}, \"incl_insts\": {}, \"excl_insts\": {}, \
                     \"incl_checks\": {}, \"excl_checks\": {}}}",
                    esc(&f.name),
                    f.calls,
                    f.incl_cycles,
                    f.excl_cycles,
                    f.incl_insts,
                    f.excl_insts,
                    f.incl_checks,
                    f.excl_checks
                )
            })
            .collect();
        let sites: Vec<String> = self
            .check_sites
            .iter()
            .map(|s| {
                format!(
                    "{{\"func\": {}, \"site\": {}, \"attempts\": {}, \"passes\": {}, \
                     \"misses\": {}}}",
                    esc(&s.func),
                    s.site,
                    s.attempts,
                    s.passes,
                    s.misses()
                )
            })
            .collect();
        format!(
            "{{\"total_cycles\": {}, \"total_insts\": {}, \"dropped_events\": {}, \
             \"reset\": {{\"used_snapshot\": {}, \"pages_dirtied\": {}, \
             \"bytes_restored\": {}, \"store_bytes_restored\": {}, \
             \"meta_entries_dropped\": {}}}, \
             \"ops\": [{}], \"funcs\": [{}], \"check_sites\": [{}]}}",
            self.total_cycles,
            self.total_insts,
            self.dropped_events,
            self.reset.used_snapshot,
            self.reset.pages_dirtied,
            self.reset.bytes_restored,
            self.reset.store_bytes_restored,
            self.reset.meta_entries_dropped,
            ops.join(", "),
            funcs.join(", "),
            sites.join(", ")
        )
    }

    /// Exports the trace-event ring in the Chrome trace-event format
    /// (load the output in `chrome://tracing`, Perfetto or `speedscope`
    /// for a flamegraph): calls/returns become duration begin/end
    /// events, everything else instant events, with the simulated cycle
    /// count as the microsecond timestamp.
    pub fn chrome_trace_json(&self) -> String {
        let name_of = |id: u64| -> String {
            self.func_names
                .get(id as usize)
                .cloned()
                .unwrap_or_else(|| format!("f{id}"))
        };
        let mut rows = Vec::with_capacity(self.events.len());
        for ev in &self.events {
            let row = match ev.kind {
                TraceEventKind::Call => format!(
                    "{{\"name\": \"{}\", \"ph\": \"B\", \"ts\": {}, \"pid\": 1, \"tid\": 1}}",
                    name_of(ev.a).replace('"', ""),
                    ev.cycles
                ),
                TraceEventKind::Return => format!(
                    "{{\"name\": \"{}\", \"ph\": \"E\", \"ts\": {}, \"pid\": 1, \"tid\": 1}}",
                    name_of(ev.a).replace('"', ""),
                    ev.cycles
                ),
                kind => format!(
                    "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                     \"pid\": 1, \"tid\": 1, \"args\": {{\"a\": {}, \"b\": {}}}}}",
                    kind.name(),
                    ev.cycles,
                    ev.a,
                    ev.b
                ),
            };
            rows.push(row);
        }
        format!(
            "{{\"traceEvents\": [{}], \"displayTimeUnit\": \"ms\"}}",
            rows.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touch_projection_strips_tags() {
        let recs = [
            TouchRecord {
                addr: 0x10,
                kind: TouchKind::Read,
                width: 8,
            },
            TouchRecord {
                addr: 0x20,
                kind: TouchKind::Write,
                width: 1,
            },
        ];
        assert_eq!(touch_addrs(&recs), vec![0x10, 0x20]);
        assert_eq!(TouchKind::Read.label(), "R");
        assert_eq!(TouchKind::Write.label(), "W");
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = TraceRing::new(3);
        for i in 0..5u64 {
            r.push(TraceEvent {
                kind: TraceEventKind::Check,
                cycles: i,
                a: i,
                b: 0,
            });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            evs.iter().map(|e| e.cycles).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest events drop first"
        );
        assert_eq!(r.dropped, 2);
    }

    #[test]
    fn op_attribution_telescopes_to_the_final_cycle_count() {
        let module = Module::new("t");
        let mut p = Profiler::new(&module);
        p.begin_run(0);
        p.dispatch(Op::Load as usize, 10); // startup window: 10 cycles
        p.dispatch(Op::Store as usize, 25); // Load window: 15
        p.end_run(40, 3, 0, false); // Store window: 15
        let stats = ExecStats {
            cycles: 40,
            insts: 3,
            ..Default::default()
        };
        let report = p.report(&module, &stats);
        assert_eq!(report.op_cycle_total(), 40);
        assert_eq!(report.op_count("Load"), 1);
        assert_eq!(report.op_count("Store"), 1);
        assert_eq!(report.op_count("(startup)"), 1);
    }

    #[test]
    fn function_attribution_splits_inclusive_and_exclusive() {
        let mut module = Module::new("t");
        let f = |name: &str| {
            let mut b = FuncBuilder::new(name, FnSig::new(vec![], Ty::Void));
            b.ret(None);
            b.finish()
        };
        module.add_func(f("outer"));
        module.add_func(f("inner"));
        let mut p = Profiler::new(&module);
        p.begin_run(0);
        p.enter(0, 10, 1, 0); // outer at cycle 10
        p.enter(1, 30, 3, 0); // inner at cycle 30
        p.exit(70, 7, 0); // inner: incl 40
        p.exit(100, 10, 0); // outer: incl 90, excl 50
        p.end_run(100, 10, 0, false);
        let stats = ExecStats {
            cycles: 100,
            ..Default::default()
        };
        let r = p.report(&module, &stats);
        let outer = r.funcs.iter().find(|f| f.name == "outer").unwrap();
        let inner = r.funcs.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.incl_cycles, 90);
        assert_eq!(outer.excl_cycles, 50);
        assert_eq!(inner.incl_cycles, 40);
        assert_eq!(inner.excl_cycles, 40);
        assert_eq!(outer.calls, 1);
    }

    #[test]
    fn recursion_counts_inclusive_once() {
        let mut module = Module::new("t");
        let mut b = FuncBuilder::new("rec", FnSig::new(vec![], Ty::Void));
        b.ret(None);
        module.add_func(b.finish());
        let mut p = Profiler::new(&module);
        p.begin_run(0);
        p.enter(0, 0, 0, 0);
        p.enter(0, 10, 0, 0); // recursive call
        p.exit(20, 0, 0); // inner: incl 10 (not added: still active below)
        p.exit(30, 0, 0); // outer: incl 30
        p.end_run(30, 0, 0, false);
        let stats = ExecStats::default();
        let r = p.report(&module, &stats);
        let rec = &r.funcs[0];
        assert_eq!(rec.calls, 2);
        assert_eq!(rec.incl_cycles, 30, "recursion counted once, outermost");
        assert_eq!(rec.excl_cycles, 30, "all cycles are exclusive to rec");
    }

    #[test]
    fn trap_unwind_closes_open_frames() {
        let mut module = Module::new("t");
        let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::Void));
        b.ret(None);
        module.add_func(b.finish());
        let mut p = Profiler::new(&module);
        p.begin_run(0);
        p.enter(0, 5, 1, 0);
        p.end_run(50, 9, 2, true);
        let stats = ExecStats {
            cycles: 50,
            ..Default::default()
        };
        let r = p.report(&module, &stats);
        assert_eq!(r.funcs[0].incl_cycles, 45);
        assert!(matches!(
            r.events.last().map(|e| e.kind),
            Some(TraceEventKind::Trap)
        ));
        // Balanced call/return events even on the trap path.
        let calls = r
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Call)
            .count();
        let rets = r
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Return)
            .count();
        assert_eq!(calls, rets);
    }

    #[test]
    fn report_json_is_balanced_and_chrome_export_shapes_up() {
        let module = Module::new("t");
        let mut p = Profiler::new(&module);
        p.begin_run(0);
        p.dispatch(Op::Check as usize, 4);
        p.store_op(5, 0x1000, false);
        p.page_fault(6, 0x2000);
        p.end_run(10, 2, 1, true);
        let stats = ExecStats {
            cycles: 10,
            insts: 2,
            ..Default::default()
        };
        let r = p.report(&module, &stats);
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(j.contains("\"total_cycles\": 10"));
        let c = r.chrome_trace_json();
        assert_eq!(c.matches('{').count(), c.matches('}').count());
        assert!(c.contains("\"traceEvents\""));
        assert!(c.contains("store_op"));
        assert!(c.contains("page_fault"));
        assert!(c.contains("trap"));
    }
}
