//! Execution statistics: the raw material of every table and figure.

/// Counters accumulated during one run.
///
/// These are the whole-run aggregates; the execution profiler
/// ([`crate::ProfileReport`], enabled via [`crate::VmConfig::profile`]
/// or `levee_core::session::SessionBuilder::profile` at the embedding
/// layer) decomposes [`cycles`](ExecStats::cycles) into per-opcode,
/// per-function and per-check-site attribution without perturbing any
/// counter here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total simulated cycles (the "time" axis of every overhead table).
    pub cycles: u64,
    /// Instructions executed.
    pub insts: u64,
    /// Plain memory operations executed (loads + stores).
    pub mem_ops: u64,
    /// Instrumented sensitive-pointer loads/stores executed.
    pub cpi_mem_ops: u64,
    /// Bounds / code-pointer checks executed.
    pub checks: u64,
    /// Code pointers sealed (`pac_sign` ops) under the PAC defense
    /// family; zero when [`crate::config::PacMode::Off`].
    pub pac_signs: u64,
    /// Sealed code pointers authenticated (`pac_auth` ops, including
    /// the fused `AuthCall` superinstruction and machine-level return /
    /// longjmp authentication).
    pub pac_auths: u64,
    /// L1 hits.
    pub cache_hits: u64,
    /// L1 misses.
    pub cache_misses: u64,
    /// Page faults charged (first touches of store pages).
    pub page_faults: u64,
    /// Calls executed.
    pub calls: u64,
    /// Calls that had to set up an unsafe stack frame.
    pub unsafe_frames: u64,
    /// safe-pointer-store entries at peak.
    pub store_entries_peak: u64,
    /// Safe-pointer-store resident bytes at end of run.
    pub store_bytes: u64,
    /// Regular-memory resident bytes at end of run.
    pub regular_bytes: u64,
    /// Peak heap bytes.
    pub heap_peak: u64,
    /// Bytes of attacker payload consumed.
    pub input_consumed: u64,
}

/// What the last `Machine::reset` cost, in host work — deliberately
/// *outside* [`ExecStats`]: reset cost is a property of machine
/// recycling, not of the simulated run, and folding it into the run
/// counters would break the bit-identical-replay invariant the
/// differential suites enforce.
///
/// Populated by `Machine::reset` (see `machine/mod.rs`) and surfaced
/// per run on `levee_core::session::RunReport` and in `--profile`
/// renderings. All-default (zero) until the first reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResetStats {
    /// True when the reset restored from the copy-on-write snapshot;
    /// false for a full loader re-boot
    /// ([`crate::config::ResetMode::Loader`] or no snapshot yet).
    pub used_snapshot: bool,
    /// Memory pages the previous run dirtied (reverted or unmapped).
    pub pages_dirtied: u64,
    /// Bytes copied back from the snapshot's memory image.
    pub bytes_restored: u64,
    /// Simulated safe-pointer-store bytes copied back.
    pub store_bytes_restored: u64,
    /// Provenance-table entries interned by the run and dropped by the
    /// rewind.
    pub meta_entries_dropped: u64,
}

impl ExecStats {
    /// Fraction of memory operations that were instrumented — the MO
    /// column of Table 2, measured dynamically.
    pub fn instrumented_mem_fraction(&self) -> f64 {
        let total = self.mem_ops + self.cpi_mem_ops;
        if total == 0 {
            0.0
        } else {
            self.cpi_mem_ops as f64 / total as f64
        }
    }

    /// Overhead of `self` relative to a baseline run, in percent
    /// (positive = slower). A degenerate baseline (zero cycles) yields
    /// `f64::NAN`, *not* `0.0` — a broken baseline must not read as "no
    /// overhead" in a results table (formatters render it as `n/a`; see
    /// `levee-core`'s `RunReport` and the bench table helpers).
    pub fn overhead_pct(&self, baseline: &ExecStats) -> f64 {
        if baseline.cycles == 0 {
            return f64::NAN;
        }
        (self.cycles as f64 / baseline.cycles as f64 - 1.0) * 100.0
    }

    /// Memory overhead relative to a baseline run, in percent, counting
    /// safe-region store bytes against the baseline's regular residency.
    /// `f64::NAN` on a degenerate (zero-residency) baseline, like
    /// [`ExecStats::overhead_pct`].
    pub fn memory_overhead_pct(&self, baseline: &ExecStats) -> f64 {
        if baseline.regular_bytes == 0 {
            return f64::NAN;
        }
        let extra = (self.regular_bytes + self.store_bytes) as f64 - baseline.regular_bytes as f64;
        extra / baseline.regular_bytes as f64 * 100.0
    }

    /// Safe-pointer-store memory as a fraction of the baseline's
    /// regular residency — the §5.2 memory-overhead metric (safe stacks
    /// replace regular stacks one-for-one and are excluded). `f64::NAN`
    /// on a degenerate baseline, like [`ExecStats::overhead_pct`].
    pub fn store_overhead_pct(&self, baseline: &ExecStats) -> f64 {
        if baseline.regular_bytes == 0 {
            return f64::NAN;
        }
        self.store_bytes as f64 / baseline.regular_bytes as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_computation() {
        let base = ExecStats {
            cycles: 1000,
            ..Default::default()
        };
        let run = ExecStats {
            cycles: 1084,
            ..Default::default()
        };
        assert!((run.overhead_pct(&base) - 8.4).abs() < 1e-9);
        // Negative overhead (safe stack speedups) is representable.
        let fast = ExecStats {
            cycles: 958,
            ..Default::default()
        };
        assert!(fast.overhead_pct(&base) < 0.0);
    }

    #[test]
    fn instrumented_fraction() {
        let s = ExecStats {
            mem_ops: 935,
            cpi_mem_ops: 65,
            ..Default::default()
        };
        assert!((s.instrumented_mem_fraction() - 0.065).abs() < 1e-9);
        assert_eq!(ExecStats::default().instrumented_mem_fraction(), 0.0);
    }

    #[test]
    fn memory_overhead() {
        let base = ExecStats {
            regular_bytes: 1000,
            ..Default::default()
        };
        let run = ExecStats {
            regular_bytes: 1000,
            store_bytes: 139,
            ..Default::default()
        };
        assert!((run.memory_overhead_pct(&base) - 13.9).abs() < 1e-9);
    }

    #[test]
    fn degenerate_baselines_are_nan_not_zero() {
        let empty = ExecStats::default();
        let run = ExecStats {
            cycles: 1000,
            regular_bytes: 1000,
            store_bytes: 100,
            ..Default::default()
        };
        assert!(run.overhead_pct(&empty).is_nan());
        assert!(run.memory_overhead_pct(&empty).is_nan());
        assert!(run.store_overhead_pct(&empty).is_nan());
    }
}
