//! The trap taxonomy: every way an execution can stop.
//!
//! Traps are values, not panics, so every test and every experiment can
//! assert *which* mechanism fired. The crucial distinction is between
//! [`Trap::Hijacked`] — the attacker reached their goal, the defense
//! FAILED — and everything else, which counts as the attack being
//! prevented (whether detected cleanly or by a crash).

/// What an attacker was trying to reach; attached to attack goals and
/// reported on success.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoalKind {
    /// Execute injected shellcode in a writable region.
    Shellcode,
    /// Return-to-libc: reach `system()` (or similar) with attacker args.
    Ret2Libc,
    /// Start a ROP/JOP gadget chain in the code segment.
    RopGadget,
    /// Divert an indirect call to an existing, unintended function.
    FuncReuse,
}

/// Which CPI check detected a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpiViolationKind {
    /// Spatial bounds check failed on a sensitive-pointer dereference.
    Bounds,
    /// Temporal id check failed (use of a pointer based on a freed
    /// object).
    Temporal,
    /// Indirect-control-transfer operand was not a genuine code pointer.
    NotACodePointer,
    /// Debug-mode mismatch between the safe-store copy and the regular
    /// copy of a sensitive pointer.
    DebugMismatch,
}

/// Why a run stopped abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// THE ATTACK SUCCEEDED: control reached an attacker goal.
    Hijacked { goal: GoalKind, addr: u64 },
    /// A CPI/CPS check fired (attack deterministically prevented).
    Cpi { kind: CpiViolationKind, addr: u64 },
    /// A CFI check rejected an indirect-transfer target.
    Cfi { addr: u64 },
    /// Stack-cookie mismatch on return.
    Cookie,
    /// Shadow-stack mismatch on return.
    ShadowStack { expected: u64, got: u64 },
    /// Control transferred into non-executable memory with DEP/NX on.
    Nx { addr: u64 },
    /// A regular-region memory operation touched the safe region under
    /// segmentation or SFI isolation.
    SafeRegion { addr: u64 },
    /// Write to write-protected memory (code, rodata, GOT).
    WriteProtected { addr: u64 },
    /// Wild memory access (unmapped page) — a plain crash.
    Unmapped { addr: u64 },
    /// Control transferred to an address that is not valid code.
    BadControl { addr: u64 },
    /// SoftBound-style full-memory-safety bounds violation.
    SoftBound { addr: u64 },
    /// Pointer-authentication failure: a sealed code pointer's MAC tag
    /// did not match under the current key and context (`-fpac` /
    /// `-fpac-tight`). `addr` is the stripped (low-48-bit) pointer.
    Pac { addr: u64 },
    /// Integer division by zero.
    DivByZero,
    /// Executed an `unreachable` terminator (frontend/lowering bug).
    Unreachable,
    /// The program exceeded its fuel budget.
    OutOfFuel,
    /// Stack overflow (regular, unsafe or safe stack exhausted).
    StackOverflow,
    /// Out of heap memory.
    OutOfMemory,
    /// Explicit `abort()` call by the program.
    ProgramAbort,
    /// Internal marker: `exit(code)` was called. The run loop converts
    /// this into [`ExitStatus::Exited`]; it never escapes the machine.
    ProgramExit(i64),
}

impl Trap {
    /// True when the trap means the attacker won.
    pub fn is_hijack(&self) -> bool {
        matches!(self, Trap::Hijacked { .. })
    }

    /// True when a *deployed defense mechanism* (not a plain crash)
    /// detected and stopped the attack.
    pub fn is_detection(&self) -> bool {
        matches!(
            self,
            Trap::Cpi { .. }
                | Trap::Cfi { .. }
                | Trap::Cookie
                | Trap::ShadowStack { .. }
                | Trap::Nx { .. }
                | Trap::SafeRegion { .. }
                | Trap::SoftBound { .. }
                | Trap::Pac { .. }
        )
    }
}

/// How an execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// Normal termination with an exit code.
    Exited(i64),
    /// Abnormal termination.
    Trapped(Trap),
}

impl ExitStatus {
    /// True for a clean exit with code 0.
    pub fn is_success(&self) -> bool {
        matches!(self, ExitStatus::Exited(0))
    }

    /// True when the run ended in a successful hijack.
    pub fn is_hijack(&self) -> bool {
        matches!(self, ExitStatus::Trapped(t) if t.is_hijack())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hijack_classification() {
        let h = Trap::Hijacked {
            goal: GoalKind::Shellcode,
            addr: 0x1000,
        };
        assert!(h.is_hijack());
        assert!(!h.is_detection());
        let c = Trap::Cpi {
            kind: CpiViolationKind::Bounds,
            addr: 0x1000,
        };
        assert!(!c.is_hijack());
        assert!(c.is_detection());
        assert!(!Trap::Unmapped { addr: 0 }.is_detection());
    }

    #[test]
    fn exit_status_helpers() {
        assert!(ExitStatus::Exited(0).is_success());
        assert!(!ExitStatus::Exited(1).is_success());
        assert!(ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::RopGadget,
            addr: 0
        })
        .is_hijack());
        assert!(!ExitStatus::Trapped(Trap::Cookie).is_hijack());
    }
}
