//! Randomized differential testing of the execution tiers.
//!
//! A property-based generator produces random (but always valid,
//! always terminating) mini-C programs — straight-line arithmetic,
//! nested branches, bounded loops, gep/load/store traffic against
//! global arrays, stack scalars and heap blocks, direct calls, and
//! indirect calls through a mutable function-pointer table — builds
//! each under a randomly drawn protection configuration, and runs it
//! under all four (engine × fusion) configurations:
//!
//! * walker, fusion off          (the reference semantics)
//! * walker, fusion on           (fusion must be a no-op here)
//! * bytecode, fusion off        (the PR-1 differential claim)
//! * bytecode, fusion on         (the superinstruction tier)
//! * bytecode, fusion on, profiler on  (profiling is host-side
//!   observation: every counter must be bit-identical with it on)
//! * bytecode, fusion on, snapshot-recycled  (run → copy-on-write
//!   snapshot reset → run again on one machine: recycling must replay
//!   bit-identically against a fresh boot)
//!
//! …and the whole lineup repeats for every safe-pointer-store
//! organization (`DIFF_FUZZ_STORES` selects a subset by name, e.g.
//! `DIFF_FUZZ_STORES=array-2M,hashtable`; default all four). Random
//! cases draw their build configuration from the full seven-config
//! roster — vanilla, safestack, CPS, CPI, SoftBound, PAC, PACTight —
//! or the `DIFF_FUZZ_CONFIGS` subset (e.g.
//! `DIFF_FUZZ_CONFIGS=PAC,PACTight`). Every
//! observable — output, exit status/trap, simulated cycle, instruction,
//! memory-op, check, cache and call counters — must be bit-identical
//! across the four engine configurations *within* each store kind.
//! Across store kinds only locality-dependent counters (cycles, cache,
//! page faults) may differ: status, output and the architectural
//! counters (instructions, memory ops, CPI ops, checks, calls) must
//! agree store-for-store too, which pins the compact-slot store
//! geometry as cost-model-only. Programs are free to trap (wild
//! indexes, division, clobbered function-pointer tables, fuel
//! exhaustion): a trap is just another observable that must agree.
//!
//! Cases come from the vendored deterministic proptest harness, so a
//! CI failure always reproduces locally; the panic message carries the
//! full generated source. A fixed seed corpus pins down regressions
//! that random search once found or that were hand-written against the
//! fusion tier (fuel cutoffs *between* the two halves of a fused pair,
//! traps out of each superinstruction, setjmp/longjmp across fused
//! code).

use levee_core::{build_source, BuildConfig};
use levee_vm::{Engine, Machine, RunOutcome, StoreKind, VmConfig};
use proptest::prelude::*;

// ---- deterministic program generator -----------------------------------

/// SplitMix64 — the generator's private stream, seeded by proptest.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next() as u128 * n as u128) >> 64) as u64
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Emits one random program. All control flow is structurally bounded
/// (loops count up to a constant < 10, no recursion), so every program
/// terminates; memory accesses are *mostly* masked into bounds, with a
/// deliberate sprinkling of wild indexes so trap paths get fuzzed too.
struct Gen {
    rng: Rng,
    src: String,
    /// Scalars in scope (loop counters enter and leave).
    vars: Vec<String>,
    /// Loop nesting depth (bounds loop-var names and nesting).
    loops: usize,
    /// Statements left to emit (shared budget across nesting).
    budget: usize,
    /// Emitting a helper body (no calls — keeps the call graph acyclic).
    in_helper: bool,
}

impl Gen {
    fn program(seed: u64) -> String {
        let mut g = Gen {
            rng: Rng(seed),
            src: String::new(),
            vars: Vec::new(),
            loops: 0,
            budget: 0,
            in_helper: false,
        };
        g.emit_program();
        g.src
    }

    fn emit_program(&mut self) {
        self.src.push_str(
            "long g0[16];\nlong g1[16];\nlong gs0;\nlong gs1;\n\
             long* hp;\n",
        );
        for f in 0..4 {
            self.src
                .push_str(&format!("long f{f}(long a, long b) {{\n"));
            self.vars = vec!["a".into(), "b".into(), "t".into()];
            self.src
                .push_str("    long t = 0;\n    long i0 = 0;\n    long i1 = 0;\n");
            self.in_helper = true;
            self.budget = 3 + self.rng.below(6) as usize;
            let stmts = self.budget;
            self.block(stmts, 1);
            self.in_helper = false;
            let ret = self.expr(2);
            self.src.push_str(&format!("    return {ret};\n}}\n"));
        }
        self.src.push_str(
            "long (*ftab[4])(long, long) = {f0, f1, f2, f3};\n\
             int main() {\n",
        );
        self.vars = (0..4).map(|i| format!("v{i}")).collect();
        for i in 0..4 {
            let c = self.rng.below(1000) as i64 - 500;
            self.src.push_str(&format!("    long v{i} = {c};\n"));
        }
        self.src
            .push_str("    long i0 = 0;\n    long i1 = 0;\n    hp = (long*)malloc(128);\n");
        self.budget = 8 + self.rng.below(18) as usize;
        let stmts = self.budget;
        self.block(stmts, 1);
        let (a, b) = (self.expr(2), self.expr(2));
        self.src.push_str(&format!(
            "    print_int((int)((v0 ^ v1 ^ v2 ^ v3 ^ gs0 ^ gs1 ^ g0[3] ^ g1[11] \
             ^ hp[5] ^ ({a}) ^ ({b})) & 65535));\n    return 0;\n}}\n",
        ));
    }

    fn indent(&mut self, depth: usize) {
        for _ in 0..=depth {
            self.src.push_str("    ");
        }
    }

    /// Emits up to `n` statements at the given indent depth.
    fn block(&mut self, n: usize, depth: usize) {
        for _ in 0..n {
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            self.stmt(depth);
        }
    }

    fn stmt(&mut self, depth: usize) {
        let roll = self.rng.below(if self.in_helper { 70 } else { 100 });
        match roll {
            // Scalar assignment.
            0..=19 => {
                let v = self.var();
                let e = self.expr(3);
                self.indent(depth);
                self.src.push_str(&format!("{v} = {e};\n"));
            }
            // Array / heap stores, mostly masked, occasionally wild.
            20..=37 => {
                let slot = self.slot();
                let e = self.expr(3);
                self.indent(depth);
                self.src.push_str(&format!("{slot} = {e};\n"));
            }
            // Scalar global store.
            38..=44 => {
                let g = if self.rng.chance(50) { "gs0" } else { "gs1" };
                let e = self.expr(3);
                self.indent(depth);
                self.src.push_str(&format!("{g} = {e};\n"));
            }
            // if / if-else.
            45..=54 => {
                let (a, b) = (self.expr(2), self.expr(2));
                let rel = ["<", "<=", ">", ">=", "==", "!="][self.rng.below(6) as usize];
                self.indent(depth);
                self.src.push_str(&format!("if (({a}) {rel} ({b})) {{\n"));
                let n = 1 + self.rng.below(3) as usize;
                self.block(n, depth + 1);
                if self.rng.chance(50) {
                    self.indent(depth);
                    self.src.push_str("} else {\n");
                    let n = 1 + self.rng.below(2) as usize;
                    self.block(n, depth + 1);
                }
                self.indent(depth);
                self.src.push_str("}\n");
            }
            // Bounded counting loop (nesting capped at 2).
            55..=64 => {
                if self.loops >= 2 {
                    let v = self.var();
                    let e = self.expr(2);
                    self.indent(depth);
                    self.src.push_str(&format!("{v} = {e};\n"));
                    return;
                }
                let i = format!("i{}", self.loops);
                let trips = 2 + self.rng.below(7);
                self.indent(depth);
                self.src
                    .push_str(&format!("for ({i} = 0; {i} < {trips}; {i} = {i} + 1) {{\n"));
                self.loops += 1;
                self.vars.push(i.clone());
                let n = 1 + self.rng.below(4) as usize;
                self.block(n, depth + 1);
                self.vars.pop();
                self.loops -= 1;
                self.indent(depth);
                self.src.push_str("}\n");
            }
            // print (observable mid-run, so partial output before a
            // trap is part of the differential).
            65..=69 => {
                let e = self.expr(2);
                self.indent(depth);
                self.src
                    .push_str(&format!("print_int((int)(({e}) & 4095));\n"));
            }
            // Direct call (main only).
            70..=81 => {
                let v = self.var();
                let f = self.rng.below(4);
                let (a, b) = (self.expr(2), self.expr(2));
                self.indent(depth);
                self.src.push_str(&format!("{v} = f{f}({a}, {b});\n"));
            }
            // Indirect call through the table (main only).
            82..=93 => {
                let v = self.var();
                let idx = self.expr(2);
                let (a, b) = (self.expr(2), self.expr(2));
                self.indent(depth);
                self.src
                    .push_str(&format!("{v} = ftab[({idx}) & 3]({a}, {b});\n"));
            }
            // Retarget a table slot — a sensitive pointer store under
            // CPS/CPI (main only).
            _ => {
                let idx = self.rng.below(4);
                let f = self.rng.below(4);
                self.indent(depth);
                self.src.push_str(&format!("ftab[{idx}] = f{f};\n"));
            }
        }
    }

    /// A (possibly wild) memory slot usable as an lvalue or an rvalue.
    fn slot(&mut self) -> String {
        let idx = self.expr(1);
        match self.rng.below(100) {
            0..=39 => format!("g{}[({idx}) & 15]", self.rng.below(2)),
            40..=69 => format!("hp[({idx}) & 15]"),
            // Wild: a constant offset past the end — lands in a
            // neighboring object or unmapped memory, deterministically.
            70..=79 => format!("g0[{}]", 16 + self.rng.below(6)),
            80..=89 => format!("hp[({idx}) & 31]"),
            _ => format!("g1[({idx}) & 15]"),
        }
    }

    fn var(&mut self) -> String {
        self.vars[self.rng.below(self.vars.len() as u64) as usize].clone()
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.chance(35) {
            return self.leaf();
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.rng.below(100) {
            0..=17 => format!("({a} + {b})"),
            18..=33 => format!("({a} - {b})"),
            34..=45 => format!("({a} * {b})"),
            46..=55 => format!("({a} & {b})"),
            56..=65 => format!("({a} | {b})"),
            66..=75 => format!("({a} ^ {b})"),
            76..=83 => format!("({a} << ({b} & 7))"),
            84..=91 => format!("({a} >> ({b} & 7))"),
            // Mostly-safe division; the rare raw divisor fuzzes the
            // DivByZero trap path.
            92..=96 => format!("({a} / (({b} & 7) + 1))"),
            97..=98 => format!("({a} % (({b} & 7) + 1))"),
            _ => format!("({a} / ({b} & 3))"),
        }
    }

    fn leaf(&mut self) -> String {
        match self.rng.below(100) {
            0..=34 => self.var(),
            35..=54 => format!("{}", self.rng.below(64) as i64 - 16),
            55..=69 => {
                let idx = self.var();
                format!("g{}[({idx}) & 15]", self.rng.below(2))
            }
            70..=79 => {
                let idx = self.var();
                format!("hp[({idx}) & 15]")
            }
            80..=89 => if self.rng.chance(50) { "gs0" } else { "gs1" }.into(),
            _ => format!("{}", self.rng.below(10_000)),
        }
    }
}

// ---- the differential harness ------------------------------------------

const ALL_CONFIGS: &[BuildConfig] = &[
    BuildConfig::Vanilla,
    BuildConfig::SafeStack,
    BuildConfig::Cps,
    BuildConfig::Cpi,
    BuildConfig::SoftBound,
    BuildConfig::Pac,
    BuildConfig::PacTight,
];

/// Build configurations to fuzz: `DIFF_FUZZ_CONFIGS` is a
/// comma-separated list of configuration names (`vanilla`, `safestack`,
/// `CPS`, `CPI`, `SoftBound`, `PAC`, `PACTight`) or `all`; unset
/// defaults to all seven.
fn fuzz_configs() -> Vec<BuildConfig> {
    match std::env::var("DIFF_FUZZ_CONFIGS") {
        Err(_) => ALL_CONFIGS.to_vec(),
        Ok(s) if s == "all" || s.is_empty() => ALL_CONFIGS.to_vec(),
        Ok(s) => s
            .split(',')
            .map(|name| {
                *ALL_CONFIGS
                    .iter()
                    .find(|c| c.name() == name.trim())
                    .unwrap_or_else(|| {
                        panic!(
                            "DIFF_FUZZ_CONFIGS: unknown configuration {name:?} (want one of \
                             vanilla, safestack, CPS, CPI, SoftBound, PAC, PACTight)"
                        )
                    })
            })
            .collect(),
    }
}

/// The (engine × fusion × profiler) configurations under test.
const LINEUP: [(Engine, bool, bool, &str); 5] = [
    (Engine::Walk, false, false, "walk/unfused"),
    (Engine::Walk, true, false, "walk/fused"),
    (Engine::Bytecode, false, false, "bytecode/unfused"),
    (Engine::Bytecode, true, false, "bytecode/fused"),
    (Engine::Bytecode, true, true, "bytecode/fused profile-on"),
];

/// Store organizations to fuzz: `DIFF_FUZZ_STORES` is a comma-separated
/// list of organization names (`array-4K`, `array-2M`, `two-level`,
/// `hashtable`) or `all`; unset defaults to all four.
fn fuzz_stores() -> Vec<StoreKind> {
    match std::env::var("DIFF_FUZZ_STORES") {
        Err(_) => StoreKind::all().to_vec(),
        Ok(s) if s == "all" || s.is_empty() => StoreKind::all().to_vec(),
        Ok(s) => s
            .split(',')
            .map(|name| {
                *StoreKind::all()
                    .iter()
                    .find(|k| k.name() == name.trim())
                    .unwrap_or_else(|| {
                        panic!("DIFF_FUZZ_STORES: unknown organization {name:?} (want one of array-4K, array-2M, two-level, hashtable)")
                    })
            })
            .collect(),
    }
}

/// Builds `src` under `config` and runs it under the full engine ×
/// fusion lineup for every selected store organization, asserting all
/// observables are bit-identical within each organization — and that
/// status, output and the architectural counters also agree *across*
/// organizations (only cycles/cache/page-fault counters may depend on
/// store geometry). `fuel` bounds the run (small values probe the
/// out-of-fuel cutoff, including between the halves of a fused pair).
fn differential(src: &str, config: BuildConfig, fuel: u64, what: &str) {
    let built = build_source(src, "fuzz", config).unwrap_or_else(|e| {
        panic!(
            "{what}: generated program failed to build under {}: {e}\n--- source ---\n{src}",
            config.name()
        )
    });
    let mut base = built.vm_config(VmConfig::default());
    base.max_insts = fuel;
    let mut across: Option<(RunOutcome, StoreKind)> = None;
    for store in fuzz_stores() {
        base.store_kind = store;
        let runs: Vec<(RunOutcome, &str)> = LINEUP
            .iter()
            .map(|&(engine, fusion, profile, name)| {
                let cfg = base
                    .with_engine(engine)
                    .with_fusion(fusion)
                    .with_profile(profile);
                let mut vm = Machine::new(&built.module, cfg);
                (vm.run(b""), name)
            })
            .collect();
        let (reference, ref_name) = &runs[0];
        for (run, name) in &runs[1..] {
            let agree = run.status == reference.status
                && run.output == reference.output
                && run.stats.cycles == reference.stats.cycles
                && run.stats.insts == reference.stats.insts
                && run.stats.mem_ops == reference.stats.mem_ops
                && run.stats.cpi_mem_ops == reference.stats.cpi_mem_ops
                && run.stats.checks == reference.stats.checks
                && run.stats.cache_hits == reference.stats.cache_hits
                && run.stats.cache_misses == reference.stats.cache_misses
                && run.stats.pac_signs == reference.stats.pac_signs
                && run.stats.pac_auths == reference.stats.pac_auths
                && run.stats.calls == reference.stats.calls;
            assert!(
                agree,
                "{what} under {} store {} fuel {fuel}: {name} diverged from {ref_name}\n\
                 {ref_name}: {:?} cycles {} insts {} out {:?}\n\
                 {name}: {:?} cycles {} insts {} out {:?}\n--- source ---\n{src}",
                config.name(),
                store.name(),
                reference.status,
                reference.stats.cycles,
                reference.stats.insts,
                reference.output,
                run.status,
                run.stats.cycles,
                run.stats.insts,
                run.output,
            );
        }
        // Snapshot-recycled twin: run the fused bytecode configuration
        // twice through one machine with a copy-on-write snapshot reset
        // between the runs. The recycled second run must be
        // bit-identical to a fresh machine's — the reset restores the
        // post-load memory image, safe-pointer store, heap clock and
        // provenance arena exactly (see `levee_vm::mem::Memory`).
        {
            let cfg = base.with_engine(Engine::Bytecode).with_fusion(true);
            let mut vm = Machine::new(&built.module, cfg);
            vm.run(b"");
            vm.reset();
            assert!(
                vm.last_reset_stats().used_snapshot,
                "{what}: default reset must take the snapshot path"
            );
            let recycled = vm.run(b"");
            let agree = recycled.status == reference.status
                && recycled.output == reference.output
                && recycled.stats.cycles == reference.stats.cycles
                && recycled.stats.insts == reference.stats.insts
                && recycled.stats.mem_ops == reference.stats.mem_ops
                && recycled.stats.cpi_mem_ops == reference.stats.cpi_mem_ops
                && recycled.stats.checks == reference.stats.checks
                && recycled.stats.cache_hits == reference.stats.cache_hits
                && recycled.stats.cache_misses == reference.stats.cache_misses
                && recycled.stats.pac_signs == reference.stats.pac_signs
                && recycled.stats.pac_auths == reference.stats.pac_auths
                && recycled.stats.calls == reference.stats.calls;
            assert!(
                agree,
                "{what} under {} store {} fuel {fuel}: snapshot-recycled run diverged from fresh\n\
                 fresh: {:?} cycles {} insts {} out {:?}\n\
                 recycled: {:?} cycles {} insts {} out {:?}\n--- source ---\n{src}",
                config.name(),
                store.name(),
                reference.status,
                reference.stats.cycles,
                reference.stats.insts,
                reference.output,
                recycled.status,
                recycled.stats.cycles,
                recycled.stats.insts,
                recycled.output,
            );
        }
        // Store geometry must be cost-model-only: semantics and
        // architectural counters agree with the first organization run.
        if let Some((first, first_kind)) = &across {
            let agree = reference.status == first.status
                && reference.output == first.output
                && reference.stats.insts == first.stats.insts
                && reference.stats.mem_ops == first.stats.mem_ops
                && reference.stats.cpi_mem_ops == first.stats.cpi_mem_ops
                && reference.stats.checks == first.stats.checks
                && reference.stats.pac_signs == first.stats.pac_signs
                && reference.stats.pac_auths == first.stats.pac_auths
                && reference.stats.calls == first.stats.calls;
            assert!(
                agree,
                "{what} under {} fuel {fuel}: store {} diverged architecturally from {}\n\
                 {}: {:?} insts {} out {:?}\n{}: {:?} insts {} out {:?}\n--- source ---\n{src}",
                config.name(),
                store.name(),
                first_kind.name(),
                first_kind.name(),
                first.status,
                first.stats.insts,
                first.output,
                store.name(),
                reference.status,
                reference.stats.insts,
                reference.output,
            );
        } else {
            across = Some((reference.clone(), store));
        }
    }
}

/// Default proptest case count. The store matrix multiplied the work
/// per case by four, so debug builds (the local `cargo test` loop)
/// default to a quarter of the release count — total differential work
/// stays what it was before the matrix — while release runs (CI's
/// `diff-fuzz` job) take the full 1000 cases × 4 organizations.
/// `DIFF_FUZZ_CASES` overrides either.
const DEFAULT_CASES: u32 = if cfg!(debug_assertions) { 250 } else { 1000 };

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("DIFF_FUZZ_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    ))]

    /// The headline property: 1000 random programs (release default;
    /// override with `DIFF_FUZZ_CASES`), each run under all four
    /// engine × fusion configurations on every selected store
    /// organization, must be observably identical — output, traps, and
    /// every simulated counter.
    #[test]
    fn random_programs_agree_across_engines_and_fusion(
        seed in proptest::arbitrary::any::<u64>(),
        // 420 = lcm(1..=7): uniform over any `DIFF_FUZZ_CONFIGS` subset.
        cfg in 0usize..420,
        fuel_roll in 0u64..100,
        tiny_fuel in 300u64..4000,
    ) {
        let src = Gen::program(seed);
        // One build config per case (all seven covered many times over
        // the run, or the `DIFF_FUZZ_CONFIGS` subset); ~1 case in 8
        // runs on a tiny fuel budget so the OutOfFuel cutoff lands at
        // arbitrary points, fused pairs included.
        let configs = fuzz_configs();
        let fuel = if fuel_roll < 12 { tiny_fuel } else { 2_000_000 };
        differential(&src, configs[cfg % configs.len()], fuel, "random program");
    }
}

// ---- seed corpus -------------------------------------------------------

/// Hand-written regressions: each exercises a path where the fusion
/// tier could plausibly diverge, under every build config and the full
/// lineup.
#[test]
fn corpus_regressions() {
    let corpus: &[(&str, &str)] = &[
        (
            "trap out of a fused gep+load (wild index walk)",
            r#"
            long a[16];
            int main() {
                long i; long acc = 0;
                for (i = 0; i < 2000; i = i + 1) {
                    acc = acc + a[i * 37];
                }
                print_int((int)acc);
                return 0;
            }
            "#,
        ),
        (
            "trap out of a fused gep+store",
            r#"
            long a[16];
            int main() {
                long i;
                for (i = 0; i < 3000; i = i + 1) { a[i * 53] = i; }
                print_int((int)a[1]);
                return 0;
            }
            "#,
        ),
        (
            "indirect call through a clobbered table entry",
            r#"
            long f0(long x) { return x + 1; }
            long (*tab[2])(long) = {f0, f0};
            long junk[1];
            int main() {
                long i; long acc = 0;
                for (i = 0; i < 8; i = i + 1) {
                    if (i == 5) { junk[1] = 12345; }
                    acc = acc + tab[i & 1](i);
                }
                print_int((int)acc);
                return 0;
            }
            "#,
        ),
        (
            "division trap after partial output",
            r#"
            int main() {
                long i;
                for (i = 4; i >= 0; i = i - 1) {
                    print_int((int)(100 / i));
                }
                return 0;
            }
            "#,
        ),
        (
            "setjmp/longjmp across fused loops",
            r#"
            long jb[4];
            long a[8];
            int main() {
                long i; long acc = 0;
                long r = setjmp((void*)jb);
                for (i = 0; i < 8; i = i + 1) { a[i] = a[i] + r + 1; acc = acc + a[i]; }
                print_int((int)acc);
                if (r < 3) { longjmp((void*)jb, r + 1); }
                return (int)r;
            }
            "#,
        ),
        (
            "safe memcpy surrounded by fusible pairs",
            r#"
            struct cb { void (*f)(int); long pad[3]; };
            void h(int x) { print_int(x); }
            int main() {
                struct cb a;
                struct cb b;
                long i;
                a.f = h;
                for (i = 0; i < 3; i = i + 1) { a.pad[i] = i * 7; }
                memcpy((void*)&b, (void*)&a, sizeof(struct cb));
                long acc = 0;
                for (i = 0; i < 3; i = i + 1) { acc = acc + b.pad[i]; }
                b.f((int)acc);
                return 0;
            }
            "#,
        ),
    ];
    for (what, src) in corpus {
        for config in ALL_CONFIGS {
            differential(src, *config, 2_000_000, what);
        }
    }
}

/// Scans a window of fuel limits over a tight fused loop so the cutoff
/// lands on *every* position relative to the fused cmp+branch pair —
/// including exactly between its two constituents. Instruction counts,
/// cycles and the trap itself must stay identical.
#[test]
fn fuel_cutoff_lands_identically_at_every_offset() {
    let src = r#"
        long a[8];
        int main() {
            long i; long acc = 0;
            for (i = 0; i < 1000; i = i + 1) { a[i & 7] = acc; acc = acc + a[(i + 1) & 7]; }
            print_int((int)acc);
            return 0;
        }
    "#;
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        for fuel in 40..140 {
            differential(src, config, fuel, "fuel scan");
        }
    }
}
