//! Differential suite: the bytecode engine must be observationally
//! identical to the step-walking reference engine — same output, same
//! exit status, same traps, same hijack verdicts, and the same
//! simulated cycle/instruction counts — across every workload kernel,
//! every build configuration, every store organization and isolation
//! model, and the whole RIPE attack matrix.

use levee_core::{build_source, BuildConfig};
use levee_ripe::{all_attacks, run_attack_with, Profile};
use levee_vm::{Engine, ExitStatus, Isolation, Machine, RunOutcome, StoreKind, Trap, VmConfig};
use levee_workloads::kernels;

const ALL_CONFIGS: &[BuildConfig] = &[
    BuildConfig::Vanilla,
    BuildConfig::SafeStack,
    BuildConfig::Cps,
    BuildConfig::Cpi,
    BuildConfig::SoftBound,
];

/// Runs `src` built under `config` with both engines and asserts every
/// observable of the two runs agrees. Returns the (identical) outcome.
fn differential(src: &str, config: BuildConfig, base: VmConfig, what: &str) -> RunOutcome {
    let built = build_source(src, "diff", config)
        .unwrap_or_else(|e| panic!("{what}: failed to build under {}: {e}", config.name()));
    let base = built.vm_config(base);
    let run = |engine: Engine| {
        let mut vm = Machine::new(&built.module, base.with_engine(engine));
        vm.run(b"")
    };
    let walk = run(Engine::Walk);
    let bc = run(Engine::Bytecode);
    let ctx = format!("{what} under {}", config.name());
    assert_eq!(walk.status, bc.status, "{ctx}: exit status diverged");
    assert_eq!(walk.output, bc.output, "{ctx}: output diverged");
    assert_eq!(walk.stats.cycles, bc.stats.cycles, "{ctx}: cycles diverged");
    assert_eq!(
        walk.stats.insts, bc.stats.insts,
        "{ctx}: instruction counts diverged"
    );
    assert_eq!(
        walk.stats.mem_ops, bc.stats.mem_ops,
        "{ctx}: mem-op counts diverged"
    );
    assert_eq!(
        walk.stats.cpi_mem_ops, bc.stats.cpi_mem_ops,
        "{ctx}: instrumented-op counts diverged"
    );
    assert_eq!(
        walk.stats.checks, bc.stats.checks,
        "{ctx}: check counts diverged"
    );
    assert_eq!(
        (walk.stats.cache_hits, walk.stats.cache_misses),
        (bc.stats.cache_hits, bc.stats.cache_misses),
        "{ctx}: cache behaviour diverged"
    );
    assert_eq!(
        walk.stats.calls, bc.stats.calls,
        "{ctx}: call counts diverged"
    );
    walk
}

#[test]
fn every_kernel_agrees_across_engines_and_build_configs() {
    let kerns: &[(&str, &str)] = &[
        (kernels::DISPATCH, "dispatch_kernel"),
        (kernels::VCALL, "vcall_kernel"),
        (kernels::NUMERIC, "numeric_kernel"),
        (kernels::BIGSTACK, "bigstack_kernel"),
        (kernels::STRINGS, "string_kernel"),
        (kernels::GRAPH, "graph_kernel"),
        (kernels::CBSTRUCT, "cbstruct_kernel"),
        (kernels::HEAPCHURN, "heap_kernel"),
        (kernels::BULKCOPY, "bulkcopy_kernel"),
        (kernels::CALLTREE, "calltree_kernel"),
        (kernels::PTRDENSE, "ptrdense_kernel"),
    ];
    for (src, entry) in kerns {
        let program = kernels::assemble(&[src], &[(entry, 150)]);
        for config in ALL_CONFIGS {
            let out = differential(&program, *config, VmConfig::default(), entry);
            assert_eq!(
                out.status,
                ExitStatus::Exited(0),
                "{entry} must run cleanly"
            );
        }
    }
}

#[test]
fn store_organizations_and_isolation_models_agree() {
    let program = kernels::assemble(
        &[kernels::VCALL, kernels::HEAPCHURN],
        &[("vcall_kernel", 100), ("heap_kernel", 100)],
    );
    for store in StoreKind::all() {
        let base = VmConfig {
            store_kind: *store,
            ..VmConfig::default()
        };
        differential(&program, BuildConfig::Cpi, base, store.name());
    }
    for isolation in [
        Isolation::None,
        Isolation::Segmentation,
        Isolation::InfoHiding,
        Isolation::Sfi,
    ] {
        let base = VmConfig {
            isolation,
            ..VmConfig::default()
        };
        differential(&program, BuildConfig::Cpi, base, "isolation");
    }
}

#[test]
fn traps_agree_across_engines() {
    // Each program ends in a distinctive trap; both engines must agree
    // on the exact trap value.
    let cases: &[(&str, &str)] = &[
        (
            "div by zero",
            r#"
            int main() {
                long a = 7; long b = 0;
                print_int((int)(a / b));
                return 0;
            }
            "#,
        ),
        (
            "out-of-bounds dereference under instrumentation",
            r#"
            void (*cb)(int);
            void h(int x) { print_int(x); }
            int main() {
                cb = h;
                long i;
                long* p = (long*)malloc(16);
                for (i = 0; i < 64; i = i + 1) { p[i] = i; }
                cb(1);
                return 0;
            }
            "#,
        ),
        (
            "stack smash into return address",
            r#"
            int main() {
                char buf[8];
                read_input(buf, -1);
                return 0;
            }
            "#,
        ),
        (
            "abort",
            r#"
            int main() { abort(); return 0; }
            "#,
        ),
        (
            "setjmp/longjmp round trip",
            r#"
            long jb[4];
            int main() {
                long r = setjmp((void*)jb);
                print_int((int)r);
                if (r == 0) { longjmp((void*)jb, 7); }
                return (int)r;
            }
            "#,
        ),
    ];
    for (what, src) in cases {
        for config in ALL_CONFIGS {
            differential(src, *config, VmConfig::default(), what);
        }
    }
}

#[test]
fn fuel_exhaustion_agrees_across_engines() {
    let src = r#"
        int main() {
            long i = 0;
            while (1) { i = i + 1; }
            return 0;
        }
    "#;
    let base = VmConfig {
        max_insts: 10_000,
        ..VmConfig::default()
    };
    let out = differential(src, BuildConfig::Vanilla, base, "fuel");
    assert_eq!(out.status, ExitStatus::Trapped(Trap::OutOfFuel));
}

/// The §5.1 claim, replayed per engine: every attack verdict — hijack,
/// detection, crash, survival — must be identical under both engines
/// for every profile of the paper lineup.
#[test]
fn ripe_attack_matrix_verdicts_agree_across_engines() {
    let attacks = all_attacks();
    for profile in Profile::paper_lineup() {
        for (i, attack) in attacks.iter().enumerate() {
            let seed = 0xD1FF ^ (i as u64).wrapping_mul(0x9E37_79B9);
            let walk = run_attack_with(
                attack,
                &profile,
                seed,
                VmConfig::default().with_engine(Engine::Walk),
            );
            let bc = run_attack_with(
                attack,
                &profile,
                seed,
                VmConfig::default().with_engine(Engine::Bytecode),
            );
            assert_eq!(
                walk,
                bc,
                "attack #{i} {attack:?} against {} diverged between engines",
                profile.name()
            );
        }
    }
}
