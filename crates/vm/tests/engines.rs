//! Differential suite: the bytecode engine — with superinstruction
//! fusion on *and* off — must be observationally identical to the
//! step-walking reference engine: same output, same exit status, same
//! traps, same hijack verdicts, and the same simulated
//! cycle/instruction counts — across every workload kernel, every build
//! configuration, every store organization and isolation model, and the
//! whole RIPE attack matrix.

use levee_core::{build_source, BuildConfig, RunReport, Session};
use levee_ripe::{all_attacks, run_attack_with, Profile};
use levee_vm::{Engine, ExitStatus, Isolation, ResetMode, StoreKind, Trap, VmConfig};
use levee_workloads::kernels;

const ALL_CONFIGS: &[BuildConfig] = &[
    BuildConfig::Vanilla,
    BuildConfig::SafeStack,
    BuildConfig::Cps,
    BuildConfig::Cpi,
    BuildConfig::SoftBound,
    BuildConfig::Pac,
    BuildConfig::PacTight,
];

/// The three execution configurations every differential case runs:
/// the reference walker, the bytecode tier unfused, and the bytecode
/// tier with superinstruction fusion.
fn lineup(base: VmConfig) -> [(VmConfig, &'static str); 3] {
    [
        (base.with_engine(Engine::Walk), "walk"),
        (
            base.with_engine(Engine::Bytecode).with_fusion(false),
            "bytecode/unfused",
        ),
        (
            base.with_engine(Engine::Bytecode).with_fusion(true),
            "bytecode/fused",
        ),
    ]
}

/// Asserts every observable of two runs agrees.
fn assert_same(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.status, b.status, "{ctx}: exit status diverged");
    assert_eq!(a.output, b.output, "{ctx}: output diverged");
    assert_eq!(a.exec.cycles, b.exec.cycles, "{ctx}: cycles diverged");
    assert_eq!(
        a.exec.insts, b.exec.insts,
        "{ctx}: instruction counts diverged"
    );
    assert_eq!(
        a.exec.mem_ops, b.exec.mem_ops,
        "{ctx}: mem-op counts diverged"
    );
    assert_eq!(
        a.exec.cpi_mem_ops, b.exec.cpi_mem_ops,
        "{ctx}: instrumented-op counts diverged"
    );
    assert_eq!(a.exec.checks, b.exec.checks, "{ctx}: check counts diverged");
    assert_eq!(
        (a.exec.pac_signs, a.exec.pac_auths),
        (b.exec.pac_signs, b.exec.pac_auths),
        "{ctx}: PAC sign/auth counts diverged"
    );
    assert_eq!(
        (a.exec.cache_hits, a.exec.cache_misses),
        (b.exec.cache_hits, b.exec.cache_misses),
        "{ctx}: cache behaviour diverged"
    );
    assert_eq!(a.exec.calls, b.exec.calls, "{ctx}: call counts diverged");
}

/// Runs `src` built under `config` with the walker and the bytecode
/// engine (fused and unfused) and asserts every observable of the three
/// runs agrees. One session serves all three configurations — the
/// module is compiled once and the resident machine is rebuilt per
/// engine via `Session::reconfigure`. Every configuration also runs a
/// profile-on twin: the profiler is host-side observation only, so all
/// simulated counters must be bit-identical with it on, and its per-op
/// cycle attribution must telescope to exactly the run's cycle total.
/// Returns the (identical) report.
fn differential(src: &str, config: BuildConfig, base: VmConfig, what: &str) -> RunReport {
    let mut session = Session::builder()
        .source(src)
        .name("diff")
        .protection(config)
        .vm_config(base)
        .build()
        .unwrap_or_else(|e| panic!("{what}: failed to build under {}: {e}", config.name()));
    let derived = session.vm_config();
    let mut runs = Vec::new();
    for (cfg, name) in lineup(derived) {
        session.reconfigure(|c| *c = cfg);
        let plain = session.run(b"");
        session.reconfigure(|c| {
            *c = cfg;
            c.profile = true;
        });
        let profiled = session.run(b"");
        let ctx = format!("{what} under {} [{name} profile-on]", config.name());
        assert_same(&plain, &profiled, &ctx);
        let report = profiled
            .profile
            .as_ref()
            .expect("profiled run must carry a report");
        assert_eq!(
            report.op_cycle_total(),
            profiled.exec.cycles,
            "{ctx}: per-op cycle attribution must telescope to the run total"
        );
        assert_eq!(
            report.total_insts, profiled.exec.insts,
            "{ctx}: instruction attribution must match the run total"
        );
        runs.push((plain, name));
    }
    for (run, name) in &runs[1..] {
        let ctx = format!("{what} under {} [{name}]", config.name());
        assert_same(&runs[0].0, run, &ctx);
    }
    runs.swap_remove(0).0
}

#[test]
fn every_kernel_agrees_across_engines_and_build_configs() {
    let kerns: &[(&str, &str)] = &[
        (kernels::DISPATCH, "dispatch_kernel"),
        (kernels::VCALL, "vcall_kernel"),
        (kernels::NUMERIC, "numeric_kernel"),
        (kernels::BIGSTACK, "bigstack_kernel"),
        (kernels::STRINGS, "string_kernel"),
        (kernels::GRAPH, "graph_kernel"),
        (kernels::CBSTRUCT, "cbstruct_kernel"),
        (kernels::HEAPCHURN, "heap_kernel"),
        (kernels::BULKCOPY, "bulkcopy_kernel"),
        (kernels::CALLTREE, "calltree_kernel"),
        (kernels::PTRDENSE, "ptrdense_kernel"),
    ];
    for (src, entry) in kerns {
        let program = kernels::assemble(&[src], &[(entry, 150)]);
        for config in ALL_CONFIGS {
            let out = differential(&program, *config, VmConfig::default(), entry);
            // Per-location sealing (`-fpac-tight`) deliberately rejects
            // sealed words that *move between slots*: the cbstruct
            // kernel memcpys callback records, so its first indirect
            // call through the copied record dies as a PAC
            // authentication failure — the PACTight-family
            // compatibility cost, faithfully modeled (and still
            // bit-identical across engines, which is what this suite
            // pins). Every other kernel must run cleanly everywhere.
            if *config == BuildConfig::PacTight && *entry == "cbstruct_kernel" {
                assert!(
                    matches!(out.status, ExitStatus::Trapped(Trap::Pac { .. })),
                    "{entry} under PACTight must die authenticating the \
                     memcpy'd callback, got {:?}",
                    out.status
                );
                continue;
            }
            assert_eq!(
                out.status,
                ExitStatus::Exited(0),
                "{entry} must run cleanly under {}",
                config.name()
            );
        }
    }
}

#[test]
fn store_organizations_and_isolation_models_agree() {
    let program = kernels::assemble(
        &[kernels::VCALL, kernels::HEAPCHURN],
        &[("vcall_kernel", 100), ("heap_kernel", 100)],
    );
    for store in StoreKind::all() {
        let base = VmConfig {
            store_kind: *store,
            ..VmConfig::default()
        };
        differential(&program, BuildConfig::Cpi, base, store.name());
    }
    for isolation in [
        Isolation::None,
        Isolation::Segmentation,
        Isolation::InfoHiding,
        Isolation::Sfi,
    ] {
        let base = VmConfig {
            isolation,
            ..VmConfig::default()
        };
        differential(&program, BuildConfig::Cpi, base, "isolation");
    }
}

#[test]
fn traps_agree_across_engines() {
    // Each program ends in a distinctive trap; both engines must agree
    // on the exact trap value.
    let cases: &[(&str, &str)] = &[
        (
            "div by zero",
            r#"
            int main() {
                long a = 7; long b = 0;
                print_int((int)(a / b));
                return 0;
            }
            "#,
        ),
        (
            "out-of-bounds dereference under instrumentation",
            r#"
            void (*cb)(int);
            void h(int x) { print_int(x); }
            int main() {
                cb = h;
                long i;
                long* p = (long*)malloc(16);
                for (i = 0; i < 64; i = i + 1) { p[i] = i; }
                cb(1);
                return 0;
            }
            "#,
        ),
        (
            "stack smash into return address",
            r#"
            int main() {
                char buf[8];
                read_input(buf, -1);
                return 0;
            }
            "#,
        ),
        (
            "abort",
            r#"
            int main() { abort(); return 0; }
            "#,
        ),
        (
            "setjmp/longjmp round trip",
            r#"
            long jb[4];
            int main() {
                long r = setjmp((void*)jb);
                print_int((int)r);
                if (r == 0) { longjmp((void*)jb, 7); }
                return (int)r;
            }
            "#,
        ),
    ];
    for (what, src) in cases {
        for config in ALL_CONFIGS {
            differential(src, *config, VmConfig::default(), what);
        }
    }
}

#[test]
fn fuel_exhaustion_agrees_across_engines() {
    let src = r#"
        int main() {
            long i = 0;
            while (1) { i = i + 1; }
            return 0;
        }
    "#;
    let base = VmConfig {
        max_insts: 10_000,
        ..VmConfig::default()
    };
    let out = differential(src, BuildConfig::Vanilla, base, "fuel");
    assert_eq!(out.status, ExitStatus::Trapped(Trap::OutOfFuel));
}

/// The §5.1 claim, replayed per engine *and* per fusion setting: every
/// attack verdict — hijack, detection, crash, survival — must be
/// identical under the walker and the bytecode tier with fusion on and
/// off, for every profile of the paper lineup.
#[test]
fn ripe_attack_matrix_verdicts_agree_across_engines() {
    let attacks = all_attacks();
    for profile in Profile::paper_lineup() {
        for (i, attack) in attacks.iter().enumerate() {
            let seed = 0xD1FF ^ (i as u64).wrapping_mul(0x9E37_79B9);
            // The fused bytecode tier also runs with the profiler on:
            // profiling must never change an attack's verdict.
            let profiled_cfg = VmConfig::default()
                .with_engine(Engine::Bytecode)
                .with_fusion(true)
                .with_profile(true);
            // The harness chains a dry run and the exploit run through
            // one machine with a reset between them, so the default
            // lineup already exercises snapshot-reset recycling. A
            // loader-reset twin pins the other recycling path to the
            // same verdict.
            let loader_cfg = VmConfig::default()
                .with_engine(Engine::Bytecode)
                .with_fusion(true)
                .with_reset_mode(ResetMode::Loader);
            let mut verdicts = lineup(VmConfig::default())
                .into_iter()
                .chain([
                    (profiled_cfg, "bytecode/fused profile-on"),
                    (loader_cfg, "bytecode/fused loader-reset"),
                ])
                .map(|(cfg, name)| (run_attack_with(attack, &profile, seed, cfg), name));
            let (walk, _) = verdicts.next().expect("walk verdict");
            for (verdict, name) in verdicts {
                assert_eq!(
                    walk,
                    verdict,
                    "attack #{i} {attack:?} against {} diverged under {name}",
                    profile.name()
                );
            }
        }
    }
}

/// Every superinstruction's charged cycles (and instruction count, and
/// every other counter) must equal the sum of its constituents'. Each
/// snippet is chosen so the fused stream provably contains the targeted
/// superinstruction — asserted via `levee_bc` directly — and then run
/// fused, unfused and walked: all three must agree on all counters.
#[test]
fn superinstruction_cycles_equal_constituent_sums() {
    use levee_bc::Op;

    // (superinstruction, build config whose instrumentation produces
    // it, source whose hot path contains the pair).
    let cases: &[(Op, BuildConfig, &str)] = &[
        (
            Op::CmpBr,
            BuildConfig::Vanilla,
            r#"
            int main() {
                long i; long acc = 0;
                for (i = 0; i < 50; i = i + 1) { acc = acc + i; }
                print_int(acc);
                return 0;
            }
            "#,
        ),
        (
            Op::GepLoad,
            BuildConfig::Vanilla,
            r#"
            long a[16];
            int main() {
                long i; long acc = 0;
                for (i = 0; i < 16; i = i + 1) { a[i] = i * 3; }
                for (i = 0; i < 16; i = i + 1) { acc = acc + a[i]; }
                print_int(acc);
                return 0;
            }
            "#,
        ),
        // Assignment lowers the address before the value, so only
        // stores of ready operands (constants, registers) leave the
        // gep/store pair adjacent.
        (
            Op::GepStore,
            BuildConfig::Vanilla,
            r#"
            long a[16];
            int main() {
                long i;
                for (i = 0; i < 16; i = i + 1) { a[i] = 7; }
                print_int(a[7]);
                return 0;
            }
            "#,
        ),
        // SoftBound checks every dereference while protecting only
        // pointer values, so integer loads become check + plain load.
        (
            Op::CheckLoad,
            BuildConfig::SoftBound,
            r#"
            long a[16];
            int main() {
                long i; long acc = 0;
                for (i = 0; i < 16; i = i + 1) { a[i] = 7; }
                for (i = 0; i < 16; i = i + 1) { acc = acc + a[i]; }
                print_int(acc);
                return 0;
            }
            "#,
        ),
        (
            Op::CheckPtrLoad,
            BuildConfig::Cpi,
            r#"
            struct vt { long (*get)(long); };
            long id(long x) { return x + 1; }
            struct vt the_vt = {id};
            struct vt* vp;
            int main() {
                vp = &the_vt;
                print_int((int)vp->get(41));
                return 0;
            }
            "#,
        ),
        (
            Op::CheckedCall,
            BuildConfig::Cpi,
            r#"
            long id(long x) { return x + 1; }
            long (*fp)(long);
            int main() {
                fp = id;
                print_int((int)fp(41));
                return 0;
            }
            "#,
        ),
    ];
    for (op, config, src) in cases {
        let built = build_source(src, "fusepair", *config).expect("snippet builds");
        let mut bc = levee_bc::compile(&built.module);
        let stats = levee_bc::fuse(&mut bc);
        let count = match op {
            Op::CmpBr => stats.cmp_br,
            Op::GepLoad => stats.gep_load,
            Op::GepStore => stats.gep_store,
            Op::CheckLoad => stats.check_load,
            Op::CheckPtrLoad => stats.check_ptr_load,
            Op::CheckedCall => stats.checked_call,
            _ => unreachable!(),
        };
        assert!(
            count > 0,
            "{op:?}: snippet must produce the superinstruction"
        );
        differential(src, *config, VmConfig::default(), &format!("{op:?} parity"));
    }
}

/// The fused engine must perform the *same memory touches in the same
/// order* as the unfused pair — not merely the same totals. The touch
/// log covers every simulated access: program loads/stores, frame
/// slots, and the safe-store traffic recorded through `Touched`. The
/// log records tagged (read/write + width) entries; the cross-engine
/// claim is about the *address sequence*, so the diff runs on the
/// `mem_trace_addrs` projection. Each configuration also logs with the
/// profiler on — the touch sequence must not move by a single entry.
#[test]
fn fused_memory_ops_touch_the_same_sequence() {
    use levee_vm::TouchKind;

    let program = kernels::assemble(
        &[kernels::VCALL, kernels::NUMERIC],
        &[("vcall_kernel", 60), ("numeric_kernel", 200)],
    );
    for config in [BuildConfig::Vanilla, BuildConfig::Cpi] {
        let mut session = Session::builder()
            .source(&program)
            .name("trace")
            .protection(config)
            .build()
            .expect("kernels build");
        let base = session.vm_config();
        let mut logs: Vec<(Vec<u64>, String)> = Vec::new();
        for (cfg, name) in lineup(base) {
            for profile in [false, true] {
                // reconfigure rebuilds the machine, so tracing re-arms
                // per engine configuration.
                session.reconfigure(|c| {
                    *c = cfg;
                    c.profile = profile;
                });
                session.enable_mem_trace();
                let out = session.run(b"");
                assert_eq!(out.status, ExitStatus::Exited(0), "{name} must succeed");
                let tagged = session.mem_trace();
                assert!(
                    tagged.iter().any(|r| r.kind == TouchKind::Read)
                        && tagged.iter().any(|r| r.kind == TouchKind::Write),
                    "{name}: tagged log must classify reads and writes"
                );
                assert_eq!(
                    session.mem_trace_addrs(),
                    levee_vm::touch_addrs(tagged),
                    "projection helpers must agree"
                );
                let tag = if profile { " profile-on" } else { "" };
                logs.push((session.mem_trace_addrs(), format!("{name}{tag}")));
            }
        }
        assert!(!logs[0].0.is_empty(), "trace must record touches");
        for (log, name) in &logs[1..] {
            if log != &logs[0].0 {
                let (walk, _) = &logs[0];
                let at = walk
                    .iter()
                    .zip(log.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(walk.len().min(log.len()));
                panic!(
                    "{name} touch log diverged from walk under {} at index {at}: \
                     walk len {}, {name} len {} (walk[{at}..]={:?}, {name}[{at}..]={:?})",
                    config.name(),
                    walk.len(),
                    log.len(),
                    &walk[at..(at + 4).min(walk.len())],
                    &log[at..(at + 4).min(log.len())],
                );
            }
        }
    }
}
