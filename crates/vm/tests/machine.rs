//! End-to-end machine tests with hand-assembled IR: correctness of
//! execution, and the full attack/defense semantics of the paper's
//! threat model, exercised without the frontend.

use levee_ir::prelude::*;
use levee_vm::{CpiViolationKind, ExitStatus, GoalKind, Isolation, Machine, Trap, VmConfig};

/// Builds: `main` prints `6*7`, returns 0.
fn arithmetic_module() -> Module {
    let mut m = Module::new("arith");
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let x = b.bin(BinOp::Mul, 6, 7, Ty::I64);
    b.intrinsic(Intrinsic::PrintInt, vec![x.into()], Ty::Void);
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    m
}

#[test]
fn arithmetic_program_runs() {
    let m = arithmetic_module();
    let mut vm = Machine::new(&m, VmConfig::default());
    let out = vm.run(b"");
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "42");
    assert!(out.stats.insts > 0 && out.stats.cycles > 0);
}

#[test]
fn execution_is_deterministic() {
    let m = arithmetic_module();
    let a = Machine::new(&m, VmConfig::default().with_seed(9)).run(b"");
    let b = Machine::new(&m, VmConfig::default().with_seed(9)).run(b"");
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.insts, b.stats.insts);
}

/// A loop summing 0..n through memory (exercises load/store/branches).
fn loop_module(n: i64) -> Module {
    let mut m = Module::new("loop");
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let acc = b.alloca(Ty::I64, 1);
    let i = b.alloca(Ty::I64, 1);
    b.store(acc, 0, Ty::I64);
    b.store(i, 0, Ty::I64);
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let iv = b.load(i, Ty::I64);
    let c = b.cmp(CmpOp::Lt, iv, n);
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let iv2 = b.load(i, Ty::I64);
    let av = b.load(acc, Ty::I64);
    let sum = b.bin(BinOp::Add, av, iv2, Ty::I64);
    b.store(acc, sum, Ty::I64);
    let inc = b.bin(BinOp::Add, iv2, 1, Ty::I64);
    b.store(i, inc, Ty::I64);
    b.br(header);
    b.switch_to(exit);
    let fin = b.load(acc, Ty::I64);
    b.intrinsic(Intrinsic::PrintInt, vec![fin.into()], Ty::Void);
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    m
}

#[test]
fn loop_sums_correctly() {
    let m = loop_module(100);
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert_eq!(out.output, "4950");
    assert_eq!(out.status, ExitStatus::Exited(0));
}

#[test]
fn heap_roundtrip_and_free() {
    let mut m = Module::new("heap");
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let p = b
        .intrinsic(Intrinsic::Malloc, vec![64.into()], Ty::I64.ptr_to())
        .unwrap();
    b.store(p, 1234, Ty::I64);
    let v = b.load(p, Ty::I64);
    b.intrinsic(Intrinsic::PrintInt, vec![v.into()], Ty::Void);
    b.intrinsic(Intrinsic::Free, vec![p.into()], Ty::Void);
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert_eq!(out.output, "1234");
    assert_eq!(out.status, ExitStatus::Exited(0));
}

// ---------------------------------------------------------------------------
// The classic stack smash: victim() reads unbounded input into a
// 16-byte stack buffer; the payload overwrites the return address.
// ---------------------------------------------------------------------------

/// Builds the vulnerable module. `protection` applies to `victim`.
fn smash_module(protection: Protection) -> Module {
    let mut m = Module::new("smash");
    let mut v = FuncBuilder::new("victim", FnSig::new(vec![], Ty::Void));
    let buf = v.alloca(Ty::Array(Box::new(Ty::I8), 16), 1);
    v.intrinsic(
        Intrinsic::ReadInput,
        vec![buf.into(), Operand::Const(-1)],
        Ty::I64,
    );
    v.ret(None);
    let mut vf = v.finish();
    vf.protection = protection;
    if protection.safestack {
        // The safe-stack pass would classify this escaping buffer as
        // unsafe; emulate its output.
        for block in &mut vf.blocks {
            for inst in &mut block.insts {
                if let Inst::Alloca { stack, .. } = inst {
                    *stack = StackKind::Unsafe;
                }
            }
        }
    }
    let victim = m.add_func(vf);

    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    b.call(victim, vec![], Ty::Void);
    b.intrinsic(Intrinsic::PrintInt, vec![7.into()], Ty::Void);
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    m
}

/// Payload layout for the unprotected frame: buf[16] | saved ret.
/// With a cookie there are 8 extra bytes between them.
fn smash_payload(cookie_gap: bool, target: u64) -> Vec<u8> {
    let mut p = vec![b'A'; 16];
    if cookie_gap {
        p.extend_from_slice(&[b'B'; 8]);
    }
    p.extend_from_slice(&target.to_le_bytes());
    p
}

/// The buffer's runtime address in the fixed layout:
/// main ret slot (stack_top-8), victim ret slot (-16), buf (-32).
fn smash_buf_addr() -> u64 {
    levee_vm::layout::STACK_TOP - 32
}

#[test]
fn stack_smash_wins_without_defenses() {
    let m = smash_module(Protection::default());
    let mut vm = Machine::new(&m, VmConfig::legacy_unprotected());
    let shellcode = smash_buf_addr();
    vm.add_goal(shellcode, GoalKind::Shellcode);
    let out = vm.run(&smash_payload(false, shellcode));
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::Shellcode,
            addr: shellcode
        })
    );
}

#[test]
fn dep_blocks_code_injection_but_not_ret2libc() {
    let m = smash_module(Protection::default());
    // NX on: shellcode in the stack buffer no longer executes.
    let mut vm = Machine::new(&m, VmConfig::default());
    let shellcode = smash_buf_addr();
    vm.add_goal(shellcode, GoalKind::Shellcode);
    let out = vm.run(&smash_payload(false, shellcode));
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Nx { addr: shellcode })
    );

    // …but return-to-libc still works: jump to system()'s entry.
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    let out = vm.run(&smash_payload(false, system));
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::Ret2Libc,
            addr: system
        })
    );
}

#[test]
fn stack_cookie_detects_contiguous_overflow() {
    let m = smash_module(Protection {
        stack_cookie: true,
        ..Protection::default()
    });
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    let out = vm.run(&smash_payload(true, system));
    assert_eq!(out.status, ExitStatus::Trapped(Trap::Cookie));
}

#[test]
fn shadow_stack_detects_ret_corruption() {
    let m = smash_module(Protection {
        shadow_stack: true,
        ..Protection::default()
    });
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    let out = vm.run(&smash_payload(false, system));
    assert!(matches!(
        out.status,
        ExitStatus::Trapped(Trap::ShadowStack { .. })
    ));
}

#[test]
fn safe_stack_makes_return_address_unreachable() {
    let m = smash_module(Protection {
        safestack: true,
        ..Protection::default()
    });
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    // The overflow now lands on the unsafe stack; the return address is
    // in the safe region. The program survives, unhijacked.
    let out = vm.run(&smash_payload(false, system));
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "7");
}

#[test]
fn coarse_ret_cfi_blocks_arbitrary_targets_but_not_ret_sites() {
    // CFI rejects returning to system()'s entry…
    let m = smash_module(Protection {
        ret_cfi: true,
        ..Protection::default()
    });
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    let out = vm.run(&smash_payload(false, system));
    assert_eq!(out.status, ExitStatus::Trapped(Trap::Cfi { addr: system }));

    // …but a different *valid return site* passes the coarse check —
    // the principled CFI bypass of Göktaş et al. / Davi et al.
    let mut vm = Machine::new(&m, VmConfig::default());
    let sites = vm.ret_site_addrs();
    let gadget = *sites.last().unwrap();
    vm.add_goal(gadget, GoalKind::RopGadget);
    let out = vm.run(&smash_payload(false, gadget));
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::RopGadget,
            addr: gadget
        })
    );
}

#[test]
fn divergent_return_to_non_goal_crashes() {
    let m = smash_module(Protection::default());
    let mut vm = Machine::new(&m, VmConfig::default());
    // Target a code address that is neither a goal nor the right site.
    let sites = vm.ret_site_addrs();
    let out = vm.run(&smash_payload(false, sites[0]));
    assert!(matches!(
        out.status,
        ExitStatus::Trapped(Trap::BadControl { .. })
    ));
}

// ---------------------------------------------------------------------------
// Global function-pointer overwrite (BSS attack) and CPS protection.
// ---------------------------------------------------------------------------

/// A module with a global `char buf[16]` directly followed by a global
/// function pointer. `main` reads input into `buf` (overflowable), then
/// calls through the pointer. `protected` selects CPS instrumentation.
fn fptr_module(protected: bool) -> Module {
    let mut m = Module::new("fptr");
    let sig = FnSig::new(vec![], Ty::Void);

    let mut good = FuncBuilder::new("good", sig.clone());
    good.intrinsic(Intrinsic::PrintInt, vec![1.into()], Ty::Void);
    good.ret(None);
    let good = m.add_func(good.finish());

    let mut evil = FuncBuilder::new("evil", sig.clone());
    evil.intrinsic(Intrinsic::PrintInt, vec![666.into()], Ty::Void);
    evil.ret(None);
    let evil = m.add_func(evil.finish());

    m.add_global(GlobalDef {
        name: "buf".into(),
        ty: Ty::Array(Box::new(Ty::I8), 16),
        init: vec![],
        read_only: false,
    });
    m.add_global(GlobalDef {
        name: "handler".into(),
        ty: Ty::fn_ptr(sig.clone()),
        init: vec![],
        read_only: false,
    });

    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let buf = m.global_by_name("buf").unwrap();
    let slot = m.global_by_name("handler").unwrap();
    let bufp = b.global_addr(buf, Ty::I8.ptr_to());
    let slotp = b.global_addr(slot, Ty::fn_ptr(sig.clone()).ptr_to());
    let f = b.func_addr(good, sig.clone());
    if protected {
        // CPS instrumentation: code-pointer store/load via safe store.
        b.func_mut_push(Inst::Cpi(CpiOp::PtrStore {
            policy: Policy::Cps,
            ptr: slotp.into(),
            value: f.into(),
            universal: false,
        }));
    } else {
        b.store(slotp, f, Ty::fn_ptr(sig.clone()));
    }
    // The vulnerability: unbounded read into the 16-byte global.
    b.intrinsic(
        Intrinsic::ReadInput,
        vec![bufp.into(), Operand::Const(-1)],
        Ty::I64,
    );
    let callee = if protected {
        let dest = b.fresh_local(Ty::fn_ptr(sig.clone()));
        b.func_mut_push(Inst::Cpi(CpiOp::PtrLoad {
            policy: Policy::Cps,
            dest,
            ptr: slotp.into(),
            universal: false,
        }));
        b.func_mut_push(Inst::Cpi(CpiOp::FnCheck {
            policy: Policy::Cps,
            callee: dest.into(),
        }));
        dest
    } else {
        b.load(slotp, Ty::fn_ptr(sig.clone()))
    };
    b.call_indirect(callee, sig, vec![]);
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    m.compute_address_taken();
    assert!(m.func(good).address_taken);
    assert!(!m.func(evil).address_taken);
    let _ = evil;
    m
}

/// Payload: 16 filler bytes then the target address (the fptr global is
/// laid out 16-aligned right after the buffer).
fn fptr_payload(target: u64) -> Vec<u8> {
    let mut p = vec![b'A'; 16];
    p.extend_from_slice(&target.to_le_bytes());
    p
}

#[test]
fn global_fptr_overwrite_hijacks_unprotected_program() {
    let m = fptr_module(false);
    let mut vm = Machine::new(&m, VmConfig::default());
    let evil = vm.func_entry("evil").unwrap();
    vm.add_goal(evil, GoalKind::FuncReuse);
    let out = vm.run(&fptr_payload(evil));
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::FuncReuse,
            addr: evil
        })
    );
}

#[test]
fn cps_store_makes_global_fptr_overwrite_harmless() {
    let m = fptr_module(true);
    let mut vm = Machine::new(&m, VmConfig::default());
    let evil = vm.func_entry("evil").unwrap();
    vm.add_goal(evil, GoalKind::FuncReuse);
    let out = vm.run(&fptr_payload(evil));
    // Silent prevention: the authentic pointer lives in the safe store.
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "1");
}

#[test]
fn type_cfi_blocks_signature_mismatch_but_not_address_taken_reuse() {
    // CFI(TypeSignature) admits any address-taken function of matching
    // signature; 'evil' is NOT address-taken here, so CFI stops it.
    let mut m = fptr_module(false);
    for f in &mut m.funcs {
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                if let Inst::CallIndirect { cfi, .. } = inst {
                    *cfi = Some(CfiPolicy::TypeSignature);
                }
            }
        }
    }
    let mut vm = Machine::new(&m, VmConfig::default());
    let evil = vm.func_entry("evil").unwrap();
    vm.add_goal(evil, GoalKind::FuncReuse);
    let out = vm.run(&fptr_payload(evil));
    assert_eq!(out.status, ExitStatus::Trapped(Trap::Cfi { addr: evil }));
}

// ---------------------------------------------------------------------------
// setjmp / longjmp
// ---------------------------------------------------------------------------

fn setjmp_module() -> Module {
    let mut m = Module::new("sj");
    m.add_global(GlobalDef {
        name: "jb".into(),
        ty: Ty::Array(Box::new(Ty::I64), 3),
        init: vec![],
        read_only: false,
    });
    m.add_global(GlobalDef {
        name: "buf".into(),
        ty: Ty::Array(Box::new(Ty::I8), 8),
        init: vec![],
        read_only: false,
    });
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let jb = m.global_by_name("jb").unwrap();
    let buf = m.global_by_name("buf").unwrap();
    let jbp = b.global_addr(jb, Ty::I64.ptr_to());
    let r = b
        .intrinsic(Intrinsic::Setjmp, vec![jbp.into()], Ty::I32)
        .unwrap();
    let back = b.new_block();
    let first = b.new_block();
    let c = b.cmp(CmpOp::Ne, r, 0);
    b.cond_br(c, back, first);
    b.switch_to(back);
    b.intrinsic(Intrinsic::PrintInt, vec![r.into()], Ty::Void);
    b.ret(Some(0.into()));
    b.switch_to(first);
    b.intrinsic(Intrinsic::PrintInt, vec![0.into()], Ty::Void);
    // Vulnerability between setjmp and longjmp: overflowable global read
    // (buf sits before jb? order: jb first, buf second — so overflow of
    // buf cannot reach jb; attack instead reads input straight into jb).
    let bufp = b.global_addr(buf, Ty::I8.ptr_to());
    b.intrinsic(
        Intrinsic::ReadInput,
        vec![bufp.into(), Operand::Const(-1)],
        Ty::I64,
    );
    let jbp2 = b.global_addr(jb, Ty::I64.ptr_to());
    b.intrinsic(
        Intrinsic::Longjmp,
        vec![jbp2.into(), Operand::Const(42)],
        Ty::Void,
    );
    b.unreachable();
    m.add_func(b.finish());
    m
}

#[test]
fn setjmp_longjmp_roundtrip() {
    let m = setjmp_module();
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "0\n42");
}

#[test]
fn corrupted_jmp_buf_hijacks_unprotected_longjmp() {
    let m = setjmp_module();
    let mut vm = Machine::new(&m, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    // buf is 16-aligned after jb (24 bytes → padded to 32)? jb is first
    // global: jb at DATA_BASE, buf at DATA_BASE+32. Overflow buf
    // backwards is impossible; instead overflow buf by 0 and corrupt jb
    // directly with the attacker-write primitive before the longjmp.
    let jb = vm.global_addr("jb").unwrap();
    let out = vm.run_with_midpoint_corruption(b"", 6, |vm| {
        vm.attacker_write(jb, &system.to_le_bytes()).unwrap();
    });
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Hijacked {
            goal: GoalKind::Ret2Libc,
            addr: system
        })
    );
}

#[test]
fn protected_jmp_buf_survives_corruption() {
    let m = setjmp_module();
    let config = VmConfig {
        protect_runtime_code_ptrs: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&m, config);
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);
    let jb = vm.global_addr("jb").unwrap();
    let out = vm.run_with_midpoint_corruption(b"", 6, |vm| {
        vm.attacker_write(jb, &system.to_le_bytes()).unwrap();
    });
    // The authentic token lives in the safe store; the longjmp proceeds
    // normally and the program completes.
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "0\n42");
}

// ---------------------------------------------------------------------------
// Isolation
// ---------------------------------------------------------------------------

#[test]
fn attacker_cannot_write_safe_region_under_isolation() {
    let m = arithmetic_module();
    for iso in [
        Isolation::Segmentation,
        Isolation::Sfi,
        Isolation::InfoHiding,
    ] {
        let config = VmConfig {
            isolation: iso,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&m, config);
        let target = vm.layout().safe_stack_top() - 8;
        assert!(
            vm.attacker_write(target, &[0xff; 8]).is_err(),
            "isolation {iso:?} must block safe-region writes"
        );
    }
    // Ablation: with isolation off, the safe stack is just memory and
    // the attacker reaches it — CPI's guarantee depends on isolation.
    let config = VmConfig {
        isolation: Isolation::None,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&m, config);
    let target = vm.layout().safe_stack_top() - 8;
    assert!(vm.attacker_write(target, &[0xff; 8]).is_ok());
}

#[test]
fn attacker_cannot_modify_code() {
    let m = arithmetic_module();
    let mut vm = Machine::new(&m, VmConfig::default());
    let entry = vm.func_entry("main").unwrap();
    assert!(vm.attacker_write(entry, &[0x90; 4]).is_err());
}

#[test]
fn guessing_the_safe_region_mostly_crashes() {
    let m = arithmetic_module();
    let config = VmConfig {
        isolation: Isolation::InfoHiding,
        seed: 1234,
        ..VmConfig::default()
    };
    let vm = Machine::new(&m, config);
    let mut crashes = 0;
    let mut hits = 0;
    // Sweep guesses across the candidate window.
    for i in 0..1024u64 {
        let guess = levee_vm::layout::SAFE_REGION_MIN + i * levee_vm::layout::SAFE_REGION_ALIGN;
        match vm.attacker_guess(guess) {
            levee_vm::GuessOutcome::Hit => hits += 1,
            levee_vm::GuessOutcome::Crash => crashes += 1,
            levee_vm::GuessOutcome::Miss => {}
        }
    }
    assert!(hits <= 8, "window of {hits} hits should be tiny");
    assert!(crashes > 900, "almost all guesses crash ({crashes})");
}

#[test]
fn cpi_check_semantics() {
    // A direct unit-style exercise of Check/FnCheck through the machine.
    let mut m = Module::new("check");
    let sig = FnSig::new(vec![], Ty::Void);
    let mut cb = FuncBuilder::new("cb", sig.clone());
    cb.ret(None);
    let cb = m.add_func(cb.finish());
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    // In-bounds check passes:
    let arr = b.alloca(Ty::Array(Box::new(Ty::I64), 4), 1);
    b.func_mut_push(Inst::Cpi(CpiOp::Check {
        policy: Policy::Cpi,
        ptr: arr.into(),
        size: 8,
    }));
    // Forged pointer (int literal) fails FnCheck:
    let forged = b.cast(
        CastKind::IntToPtr,
        Operand::Const(0x40_0000),
        Ty::fn_ptr(sig.clone()),
    );
    let ok = b.func_addr(cb, sig.clone());
    let _ = ok;
    b.func_mut_push(Inst::Cpi(CpiOp::FnCheck {
        policy: Policy::Cpi,
        callee: forged.into(),
    }));
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert_eq!(
        out.status,
        ExitStatus::Trapped(Trap::Cpi {
            kind: CpiViolationKind::NotACodePointer,
            addr: 0x40_0000
        })
    );
}

#[test]
fn out_of_bounds_cpi_check_traps() {
    let mut m = Module::new("oob");
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let arr = b.alloca(Ty::Array(Box::new(Ty::I64), 4), 1);
    let past = b.gep(arr, 4, Ty::I64, 0); // one past the end
    b.func_mut_push(Inst::Cpi(CpiOp::Check {
        policy: Policy::Cpi,
        ptr: past.into(),
        size: 8,
    }));
    b.ret(Some(0.into()));
    m.add_func(b.finish());
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert!(matches!(
        out.status,
        ExitStatus::Trapped(Trap::Cpi {
            kind: CpiViolationKind::Bounds,
            ..
        })
    ));
}

#[test]
fn use_after_free_detected_with_temporal_checks() {
    let mut m = Module::new("uaf");
    let mut b = FuncBuilder::new("main", FnSig::new(vec![], Ty::I32));
    let p = b
        .intrinsic(Intrinsic::Malloc, vec![32.into()], Ty::I64.ptr_to())
        .unwrap();
    b.intrinsic(Intrinsic::Free, vec![p.into()], Ty::Void);
    b.func_mut_push(Inst::Cpi(CpiOp::Check {
        policy: Policy::Cpi,
        ptr: p.into(),
        size: 8,
    }));
    b.ret(Some(0.into()));
    m.add_func(b.finish());

    let config = VmConfig {
        temporal: true,
        ..VmConfig::default()
    };
    let out = Machine::new(&m, config).run(b"");
    assert!(matches!(
        out.status,
        ExitStatus::Trapped(Trap::Cpi {
            kind: CpiViolationKind::Temporal,
            ..
        })
    ));

    // Spatial-only mode (the paper's prototype) lets it pass.
    let out = Machine::new(&m, VmConfig::default()).run(b"");
    assert_eq!(out.status, ExitStatus::Exited(0));
}

// ---------------------------------------------------------------------------
// Machine::reset — store ↔ provenance-table lifecycle coherence
// ---------------------------------------------------------------------------

/// A reset machine replays bit-identically to its first run on every
/// store organization: every observable counter, the output, and the
/// exit status. The module here is CPS-protected, so the first run
/// populates the safe store with slots holding generation-checked
/// provenance handles; reset clears those slots *before* the table's
/// generation bump (no slot may dangle) and re-interns the loader's
/// handles at the new generation. The hash organization is the
/// interesting case: its probe addresses depend on the table capacity,
/// so a reset that retained growth would diverge in cache counters.
#[test]
fn reset_replays_bit_identically() {
    for store_kind in levee_vm::StoreKind::all() {
        let m = fptr_module(true);
        let config = VmConfig {
            store_kind: *store_kind,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&m, config);
        let evil = vm.func_entry("evil").unwrap();
        vm.add_goal(evil, GoalKind::FuncReuse);
        let first = vm.run(&fptr_payload(evil));
        assert_eq!(first.status, ExitStatus::Exited(0));
        vm.reset();
        let second = vm.run(&fptr_payload(evil));
        let kind = store_kind.name();
        assert_eq!(second.status, first.status, "{kind}");
        assert_eq!(second.output, first.output, "{kind}");
        assert_eq!(second.stats.cycles, first.stats.cycles, "{kind}");
        assert_eq!(second.stats.insts, first.stats.insts, "{kind}");
        assert_eq!(second.stats.checks, first.stats.checks, "{kind}");
        assert_eq!(second.stats.cache_hits, first.stats.cache_hits, "{kind}");
        assert_eq!(
            second.stats.cache_misses, first.stats.cache_misses,
            "{kind}"
        );
        assert_eq!(second.stats.store_bytes, first.stats.store_bytes, "{kind}");
        assert_eq!(
            second.stats.store_entries_peak, first.stats.store_entries_peak,
            "{kind}"
        );
    }
}

/// Reset also restores the safe store's initializer slots (jump
/// tables / vtables written by the loader), at the *new* table
/// generation: the protected program still silently survives the
/// pointer overwrite on its second run.
#[test]
fn reset_reloads_protected_initializer_slots() {
    let m = fptr_module(true);
    let mut vm = Machine::new(&m, VmConfig::default());
    let evil = vm.func_entry("evil").unwrap();
    vm.add_goal(evil, GoalKind::FuncReuse);
    assert_eq!(vm.run(&fptr_payload(evil)).status, ExitStatus::Exited(0));
    vm.reset();
    let out = vm.run(&fptr_payload(evil));
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "1");
}

/// setjmp writes a runtime-created code pointer through the safe store
/// mid-run; a reset between runs must not leave that slot (or its
/// handle) behind.
#[test]
fn reset_clears_runtime_created_store_slots() {
    let m = setjmp_module();
    let config = VmConfig {
        protect_runtime_code_ptrs: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&m, config);
    let first = vm.run(b"");
    assert_eq!(first.status, ExitStatus::Exited(0));
    vm.reset();
    let second = vm.run(b"");
    assert_eq!(second.status, first.status);
    assert_eq!(second.output, first.output);
    assert_eq!(second.stats.cycles, first.stats.cycles);
}

// ---------------------------------------------------------------------------
// Machine::reset — snapshot restore vs loader re-boot
// ---------------------------------------------------------------------------

/// The two reset mechanisms are observably interchangeable: for every
/// store organization, a machine recycled by snapshot restore (the
/// default) produces exactly the counters of one recycled by a full
/// loader re-boot, which in turn match a fresh machine. Only the
/// host-side [`Machine::last_reset_stats`] may differ.
#[test]
fn snapshot_and_loader_resets_are_bit_identical() {
    use levee_vm::ResetMode;
    for store_kind in levee_vm::StoreKind::all() {
        let m = fptr_module(true);
        let kind = store_kind.name();
        let base = VmConfig {
            store_kind: *store_kind,
            ..VmConfig::default()
        };
        let mut runs = Vec::new();
        for mode in [ResetMode::Snapshot, ResetMode::Loader] {
            let mut vm = Machine::new(&m, base.with_reset_mode(mode));
            let evil = vm.func_entry("evil").unwrap();
            vm.add_goal(evil, GoalKind::FuncReuse);
            let first = vm.run(&fptr_payload(evil));
            vm.reset();
            assert_eq!(
                vm.last_reset_stats().used_snapshot,
                mode == ResetMode::Snapshot,
                "{kind}: reset must use the configured mechanism"
            );
            let second = vm.run(&fptr_payload(evil));
            runs.push((first, second));
        }
        let (snap_first, snap_second) = &runs[0];
        let (loader_first, loader_second) = &runs[1];
        assert_eq!(snap_first.status, snap_second.status, "{kind}");
        for (a, b) in [
            (snap_first, loader_first),
            (snap_second, loader_second),
            (snap_first, snap_second),
        ] {
            assert_eq!(a.status, b.status, "{kind}");
            assert_eq!(a.output, b.output, "{kind}");
            assert_eq!(a.stats.cycles, b.stats.cycles, "{kind}");
            assert_eq!(a.stats.insts, b.stats.insts, "{kind}");
            assert_eq!(a.stats.mem_ops, b.stats.mem_ops, "{kind}");
            assert_eq!(a.stats.cpi_mem_ops, b.stats.cpi_mem_ops, "{kind}");
            assert_eq!(a.stats.checks, b.stats.checks, "{kind}");
            assert_eq!(a.stats.cache_hits, b.stats.cache_hits, "{kind}");
            assert_eq!(a.stats.cache_misses, b.stats.cache_misses, "{kind}");
            assert_eq!(a.stats.calls, b.stats.calls, "{kind}");
            assert_eq!(a.stats.store_bytes, b.stats.store_bytes, "{kind}");
            assert_eq!(
                a.stats.store_entries_peak, b.stats.store_entries_peak,
                "{kind}"
            );
            assert_eq!(a.stats.regular_bytes, b.stats.regular_bytes, "{kind}");
            assert_eq!(a.stats.heap_peak, b.stats.heap_peak, "{kind}");
        }
    }
}

/// The snapshot reset's cost accounting is real and stable: a run
/// dirties pages, the restore reports them, and repeated
/// run-reset-run cycles report the same work each round (the restore
/// leaves the machine exactly where the capture did).
#[test]
fn snapshot_reset_reports_stable_costs() {
    let m = fptr_module(true);
    let mut vm = Machine::new(&m, VmConfig::default());
    assert!(vm.snapshot_pages() > 0, "boot captured a snapshot");
    assert_eq!(
        vm.snapshot_private_bytes(),
        0,
        "pre-run, every snapshot page is shared with the live image"
    );
    let evil = vm.func_entry("evil").unwrap();
    let first = vm.run(&fptr_payload(evil));
    assert!(
        vm.snapshot_private_bytes() > 0,
        "the run dirtied shared pages, splitting them"
    );
    let mut costs = Vec::new();
    for _ in 0..3 {
        vm.reset();
        let stats = vm.last_reset_stats();
        assert!(stats.used_snapshot);
        assert!(stats.pages_dirtied > 0, "the run wrote stack pages");
        assert_eq!(
            vm.snapshot_private_bytes(),
            0,
            "restore re-shares every dirtied page"
        );
        costs.push(stats);
        let again = vm.run(&fptr_payload(evil));
        assert_eq!(again.stats.cycles, first.stats.cycles);
    }
    assert_eq!(costs[0], costs[1], "identical runs dirty identical state");
    assert_eq!(costs[1], costs[2]);
}

/// Forked machines are independent bit-identical twins: same outputs
/// and counters as the original, runnable on another thread (the
/// `Send` audit behind levee-core's `SessionPool`), and each fork's
/// snapshot recycling works exactly like the original's.
#[test]
fn forked_machine_is_a_bit_identical_twin() {
    let m = loop_module(200);
    let mut original = Machine::new(&m, VmConfig::default().with_seed(11));
    let mut fork = original.fork();
    assert_eq!(
        fork.snapshot_private_bytes(),
        0,
        "a pre-run fork shares every snapshot page copy-on-write"
    );

    let a = original.run(b"");
    // The fork runs on a worker thread: `Machine<'_>` is `Send` within
    // the module borrow's scope.
    let b = std::thread::scope(|s| {
        s.spawn(|| {
            let out = fork.run(b"");
            fork.reset();
            assert!(fork.last_reset_stats().used_snapshot);
            (out, fork.run(b""))
        })
        .join()
        .expect("worker panicked")
    });
    assert_eq!(a.output, b.0.output);
    assert_eq!(a.status, b.0.status);
    assert_eq!(a.stats, b.0.stats);
    assert_eq!(a.stats, b.1.stats, "fork recycles like the original");

    // Writes in the fork never leaked into the original.
    original.reset();
    let again = original.run(b"");
    assert_eq!(a.stats, again.stats);
    assert_eq!(a.output, again.output);
}

/// Forking after the original has run and recycled still yields a
/// machine whose behaviour matches a fresh boot.
#[test]
fn fork_after_recycling_matches_fresh_boot() {
    let m = loop_module(64);
    let cfg = VmConfig::default().with_seed(3);
    let mut original = Machine::new(&m, cfg);
    let first = original.run(b"");
    original.reset();
    let mut fork = original.fork();
    let forked = fork.run(b"");
    assert_eq!(first.output, forked.output);
    assert_eq!(first.stats, forked.stats);
}
