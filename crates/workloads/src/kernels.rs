//! The mini-C kernel library the workloads are mixed from.
//!
//! Each kernel isolates one pointer-behaviour profile from the paper's
//! benchmark discussion (§5.2):
//!
//! * [`DISPATCH`] — perlbench's opcode dispatch: a loop calling through
//!   an array of function pointers (code-pointer loads on every
//!   iteration; CPS's worst case);
//! * [`VCALL`] — C++ virtual calls: objects carrying vtable pointers,
//!   every object access is a sensitive-pointer dereference (CPI's
//!   worst case: omnetpp, xalancbmk, dealII);
//! * [`NUMERIC`] — dense integer array arithmetic (milc, lbm, sjeng:
//!   nothing sensitive, ~zero overhead);
//! * [`BIGSTACK`] — a function with a large stack array used through
//!   many iterations: under the safe stack the array moves off the hot
//!   stack, which is the namd speedup effect;
//! * [`STRINGS`] — libc string manipulation (char* heuristics);
//! * [`GRAPH`] — pointer-chasing over insensitive data pointers (mcf);
//! * [`CBSTRUCT`] — structs embedding function pointers, copied with
//!   `memcpy` (gcc's profile; exercises the safe memcpy path);
//! * [`HEAPCHURN`] — malloc/free churn (temporal behaviour);
//! * [`CALLTREE`] — many tiny direct calls per iteration: almost all
//!   simulated time is frame push/pop, the descriptor-driven call
//!   path's target;
//! * [`PTRDENSE`] — pointer-valued arguments and returns flowing
//!   through a call chain: every register/frame copy moves tagged
//!   values, the compact-`V` representation's target.
//!
//! Every kernel accumulates into a checksum that the workload prints, so
//! differential tests can compare outputs across protection configs.

/// Function-pointer opcode dispatch (perlbench-style).
pub const DISPATCH: &str = r#"
long disp_acc;
void op_add(int x) { disp_acc = disp_acc + x; }
void op_sub(int x) { disp_acc = disp_acc - x; }
void op_mul(int x) { disp_acc = disp_acc * 3 + x; }
void op_xor(int x) { disp_acc = disp_acc ^ x; }
void op_shl(int x) { disp_acc = (disp_acc << 1) ^ x; }
void op_and(int x) { disp_acc = (disp_acc & 1023) + x; }
void op_or(int x) { disp_acc = (disp_acc | 3) + x; }
void op_ror(int x) { disp_acc = (disp_acc >> 1) + x; }
void (*disp_table[8])(int) = {op_add, op_sub, op_mul, op_xor,
                              op_shl, op_and, op_or, op_ror};
long dispatch_kernel(long iters) {
    disp_acc = 1;
    long i;
    for (i = 0; i < iters; i = i + 1) {
        disp_table[i & 7]((int)(i & 63));
        disp_table[(i + 3) & 7]((int)(i & 31));
        disp_table[(i + 5) & 7]((int)(i & 15));
    }
    return disp_acc;
}
"#;

/// Virtual calls through vtable pointers (C++-benchmark style).
pub const VCALL: &str = r#"
struct vobj;
struct vvt {
    long (*area)(struct vobj*);
    long (*grow)(struct vobj*, long);
};
struct vobj { struct vvt* vt; long w; long h; };
long rect_area(struct vobj* o) { return o->w * o->h + (o->w ^ o->h); }
long rect_grow(struct vobj* o, long d) { o->w = (o->w + d + o->h) & 1023; return o->w; }
long tri_area(struct vobj* o) { return ((o->w * o->h) >> 1) + (o->h & 15); }
long tri_grow(struct vobj* o, long d) { o->h = (o->h + d + o->w) & 1023; return o->h; }
struct vvt rect_vt = {rect_area, rect_grow};
struct vvt tri_vt = {tri_area, tri_grow};
long vcall_kernel(long iters) {
    struct vobj objs[16];
    long i;
    for (i = 0; i < 16; i = i + 1) {
        if ((i & 1) == 0) { objs[i].vt = &rect_vt; } else { objs[i].vt = &tri_vt; }
        objs[i].w = i + 1;
        objs[i].h = i + 2;
    }
    long acc = 0;
    for (i = 0; i < iters; i = i + 1) {
        struct vobj* o = &objs[i & 15];
        acc = acc + o->vt->area(o);
        acc = acc + o->vt->grow(o, i & 7);
        struct vobj* p = &objs[(i + 5) & 15];
        acc = acc + p->vt->area(p);
        acc = acc + p->vt->grow(p, i & 3);
        acc = acc + o->w + p->h;
    }
    return acc;
}
"#;

/// Dense integer arithmetic over arrays (no sensitive pointers).
pub const NUMERIC: &str = r#"
long num_a[256];
long num_b[256];
long numeric_kernel(long iters) {
    long i;
    for (i = 0; i < 256; i = i + 1) { num_a[i] = i * 3 + 1; num_b[i] = i ^ 5; }
    long t;
    long acc = 0;
    long j = 0;
    for (t = 0; t < iters; t = t + 1) {
        num_a[j + 1] = (num_a[j] + num_b[j + 1] * 3) & 65535;
        acc = acc + num_a[j + 1];
        j = (j + 1) & 253;
    }
    return acc;
}
"#;

/// Hot function with a big stack array (safe-stack locality effect).
pub const BIGSTACK: &str = r#"
long bigstack_round(long seed) {
    long scratch[192];
    long i;
    for (i = 0; i < 192; i = i + 1) { scratch[i] = seed + i; }
    long acc = 0;
    long hot1 = seed;
    long hot2 = seed * 2 + 1;
    for (i = 0; i < 192; i = i + 1) {
        hot1 = hot1 + scratch[i];
        hot2 = hot2 ^ (hot1 >> 3);
        acc = acc + hot2;
    }
    return acc & 1048575;
}
long bigstack_kernel(long iters) {
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        acc = acc + bigstack_round(t);
    }
    return acc & 1048575;
}
"#;

/// String manipulation (char* heuristic: should stay uninstrumented).
pub const STRINGS: &str = r#"
long string_kernel(long iters) {
    char word[64];
    char line[256];
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        strcpy(word, "token");
        line[0] = '\0';
        long k;
        for (k = 0; k < 3; k = k + 1) {
            strcat(line, word);
            strcat(line, "-");
        }
        acc = acc + strlen(line) + (long)line[t & 15];
    }
    return acc;
}
"#;

/// Pointer-chasing over insensitive data pointers (mcf-style graph).
pub const GRAPH: &str = r#"
struct gnode { long val; struct gnode* next; };
struct gnode graph_arena[128];
long graph_kernel(long iters) {
    long i;
    for (i = 0; i < 128; i = i + 1) {
        graph_arena[i].val = (i * 7) & 31;
        graph_arena[i].next = &graph_arena[(i * 17 + 1) & 127];
    }
    struct gnode* cur = &graph_arena[0];
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        acc = acc + cur->val;
        cur = cur->next;
    }
    return acc;
}
"#;

/// Structs embedding callbacks, moved around with memcpy (gcc profile).
pub const CBSTRUCT: &str = r#"
struct cbrec { long tag; void (*cb)(int); long pad1; long pad2; };
long cb_hits;
void cb_alpha(int x) { cb_hits = cb_hits + x; }
void cb_beta(int x) { cb_hits = cb_hits + 2 * x; }
struct cbrec cb_pool[8];
long cbstruct_kernel(long iters) {
    cb_hits = 0;
    long i;
    for (i = 0; i < 8; i = i + 1) {
        cb_pool[i].tag = i;
        if (i % 2 == 0) { cb_pool[i].cb = cb_alpha; } else { cb_pool[i].cb = cb_beta; }
    }
    struct cbrec tmp;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        memcpy((void*)&tmp, (void*)&cb_pool[t & 7], sizeof(struct cbrec));
        tmp.cb((int)(t & 15));
    }
    return cb_hits;
}
"#;

/// malloc/free churn with payload writes.
pub const HEAPCHURN: &str = r#"
long heap_kernel(long iters) {
    long acc = 0;
    long t;
    long* slots[8];
    long s;
    for (s = 0; s < 8; s = s + 1) { slots[s] = 0; }
    for (t = 0; t < iters; t = t + 1) {
        long idx = t & 7;
        if (slots[idx] != 0) {
            acc = acc + *slots[idx];
            free((void*)slots[idx]);
        }
        long* p = (long*)malloc(32);
        *p = t;
        slots[idx] = p;
    }
    for (s = 0; s < 8; s = s + 1) {
        if (slots[s] != 0) { free((void*)slots[s]); }
    }
    return acc;
}
"#;

/// Call-heavy: three-deep trees of tiny functions, multiple round
/// trips per iteration — frame setup/teardown dominates.
pub const CALLTREE: &str = r#"
long ct_leaf(long a, long b) { return (a ^ b) + (a & 7); }
long ct_pair(long a, long b, long c) {
    return ct_leaf(a, b) + ct_leaf(b, c);
}
long ct_root(long a, long b, long c, long d) {
    return ct_pair(a, b, c) + ct_pair(b, c, d) + ct_leaf(a, d);
}
long calltree_kernel(long iters) {
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        acc = acc + ct_root(t, t + 1, acc & 255, t & 63);
        acc = acc + ct_leaf(t, acc & 127);
    }
    return acc & 1048575;
}
"#;

/// Pointer-dense: pointer arguments and pointer returns flow through a
/// call chain every iteration, so register files and frames are full of
/// tagged values.
pub const PTRDENSE: &str = r#"
long pd_cells[64];
long* pd_pick(long* base, long i) { return &base[(i * 13 + 5) & 63]; }
long pd_sum(long* a, long* b, long* c) { return *a + *b + *c; }
long* pd_bump(long* p, long d) { *p = (*p + d) & 65535; return p; }
long ptrdense_kernel(long iters) {
    long i;
    for (i = 0; i < 64; i = i + 1) { pd_cells[i] = i * 3 + 1; }
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        long* a = pd_pick(pd_cells, t);
        long* b = pd_pick(pd_cells, t + 7);
        long* c = pd_bump(&pd_cells[t & 63], t & 15);
        acc = acc + pd_sum(a, b, c);
    }
    return acc & 1048575;
}
"#;

/// Bulk byte copies between plain buffers (bzip2/h264ref style).
pub const BULKCOPY: &str = r#"
char bulk_src[512];
char bulk_dst[512];
long bulkcopy_kernel(long iters) {
    long i;
    for (i = 0; i < 512; i = i + 1) { bulk_src[i] = (char)(i * 31 + 7); }
    long acc = 0;
    long t;
    for (t = 0; t < iters; t = t + 1) {
        memcpy((void*)bulk_dst, (void*)bulk_src, 256 + (t & 255));
        acc = acc + (long)bulk_dst[t & 511];
    }
    return acc;
}
"#;

/// A kernel call line for a workload main().
pub fn call(kernel_fn: &str, iters: u64) -> String {
    format!("    checksum = checksum ^ (checksum << 3) ^ {kernel_fn}({iters});\n")
}

/// Assembles a complete workload program from kernel snippets and the
/// sequence of `(kernel function, iterations)` calls.
pub fn assemble(kernels: &[&str], calls: &[(&str, u64)]) -> String {
    let mut src = String::new();
    for k in kernels {
        src.push_str(k);
    }
    src.push_str("int main() {\n    long checksum = 7;\n");
    for (f, iters) in calls {
        src.push_str(&call(f, *iters));
    }
    src.push_str("    print_int(checksum);\n    return 0;\n}\n");
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use levee_core::Session;

    fn run_kernel(kernel: &str, f: &str) -> String {
        let src = assemble(&[kernel], &[(f, 200)]);
        let mut session = Session::builder()
            .source(&src)
            .name("k")
            .build()
            .expect("kernel compiles");
        let report = session.run_ok(b"").expect("kernel runs cleanly");
        report.output
    }

    #[test]
    fn all_kernels_compile_and_run() {
        for (k, f) in [
            (DISPATCH, "dispatch_kernel"),
            (VCALL, "vcall_kernel"),
            (NUMERIC, "numeric_kernel"),
            (BIGSTACK, "bigstack_kernel"),
            (STRINGS, "string_kernel"),
            (GRAPH, "graph_kernel"),
            (CBSTRUCT, "cbstruct_kernel"),
            (HEAPCHURN, "heap_kernel"),
            (BULKCOPY, "bulkcopy_kernel"),
            (CALLTREE, "calltree_kernel"),
            (PTRDENSE, "ptrdense_kernel"),
        ] {
            let out = run_kernel(k, f);
            assert!(!out.is_empty(), "{f} must print a checksum");
        }
    }

    #[test]
    fn kernels_are_deterministic() {
        let a = run_kernel(DISPATCH, "dispatch_kernel");
        let b = run_kernel(DISPATCH, "dispatch_kernel");
        assert_eq!(a, b);
    }
}
