//! # levee-workloads — SPEC-like, Phoronix-like and web-stack workloads
//!
//! The evaluation substrate for the CPI paper's Tables 1–4 and
//! Figures 3–4: mini-C programs whose *pointer-behaviour profile* mirrors
//! each benchmark the paper ran (we cannot run SPEC CPU2006 or FreeBSD's
//! package set inside a simulator, but the overheads the paper reports
//! are driven by the fraction of memory operations touching sensitive
//! pointers, which these profiles reproduce — see DESIGN.md §2).
//!
//! * [`spec::spec_suite`] — 19 programs mirroring the C/C++ SPEC
//!   CPU2006 benchmarks (Fig. 3, Tables 1–3);
//! * [`system::phoronix_suite`] — the FreeBSD "server" suite (Fig. 4);
//! * [`system::web_stack`] — static/wsgi/dynamic pages (Table 4);
//! * [`runner`] — the measurement harness (build under a config, run on
//!   the cycle model, differential output checks).

pub mod kernels;
pub mod runner;
pub mod spec;
pub mod system;

pub use runner::{
    measure, measure_source, measure_source_seeded, overhead_row, summarize, Measurement,
    OverheadRow,
};
pub use spec::{spec_suite, Workload};
pub use system::{phoronix_suite, web_stack};
