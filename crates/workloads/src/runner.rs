//! Measurement harness: build a workload under a configuration, run it
//! on the VM's cycle model, and report stats — the machinery behind
//! Tables 1–4 and Figures 3–4.
//!
//! Since the `levee::Session` redesign this module is a thin veneer:
//! [`measure_source`] is one session build plus one checked run, and
//! build/run failures surface as typed [`LeveeError`]s instead of
//! panics.

use levee_core::{BuildConfig, LeveeError, RunReport, Session};
use levee_vm::StoreKind;

use crate::spec::Workload;

/// One measured run. Since the `Session` redesign this *is* the
/// unified [`RunReport`] — name, configuration axes, seed, exit
/// status, output, runtime and build statistics in one serializable
/// struct (`RunReport::to_json` feeds every bench binary's `--json`
/// mode); the alias keeps the harness's historical vocabulary.
pub type Measurement = RunReport;

/// Builds and runs `workload` at `scale` under `config`, with the given
/// safe-pointer-store organization.
pub fn measure(
    workload: &Workload,
    scale: u64,
    config: BuildConfig,
    store: StoreKind,
) -> Result<Measurement, LeveeError> {
    measure_source(workload.name, &workload.source(scale), config, store)
}

/// Like [`measure`], for raw source text. Runs with the session
/// default seed ([`levee_core::DEFAULT_SEED`]).
pub fn measure_source(
    name: &str,
    src: &str,
    config: BuildConfig,
    store: StoreKind,
) -> Result<Measurement, LeveeError> {
    measure_source_seeded(name, src, config, store, levee_core::DEFAULT_SEED)
}

/// Like [`measure_source`], with an explicit deterministic seed. The
/// seed flows through the session builder and is recorded on the
/// returned [`Measurement`].
pub fn measure_source_seeded(
    name: &str,
    src: &str,
    config: BuildConfig,
    store: StoreKind,
    seed: u64,
) -> Result<Measurement, LeveeError> {
    let mut session = Session::builder()
        .source(src)
        .name(name)
        .protection(config)
        .store(store)
        .seed(seed)
        .build()?;
    session.run_ok(b"")
}

/// One row of an overhead table: a workload measured under every config,
/// with the vanilla run as baseline.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Workload name.
    pub name: String,
    /// Whether the original benchmark is C++.
    pub cpp: bool,
    /// `(config, overhead %)` pairs, excluding the baseline.
    pub overheads: Vec<(BuildConfig, f64)>,
    /// The measurements themselves (baseline first).
    pub measurements: Vec<Measurement>,
}

impl OverheadRow {
    /// The overhead for `config`, if measured.
    pub fn overhead(&self, config: BuildConfig) -> Option<f64> {
        self.overheads
            .iter()
            .find(|(c, _)| *c == config)
            .map(|(_, o)| *o)
    }
}

/// Measures `workload` under vanilla + `configs`; asserts differential
/// correctness (identical output under every configuration).
pub fn overhead_row(
    workload: &Workload,
    scale: u64,
    configs: &[BuildConfig],
    store: StoreKind,
) -> Result<OverheadRow, LeveeError> {
    let baseline = measure(workload, scale, BuildConfig::Vanilla, store)?;
    let mut overheads = Vec::new();
    let mut measurements = vec![baseline.clone()];
    for config in configs {
        let m = measure(workload, scale, *config, store)?;
        assert_eq!(
            m.output,
            baseline.output,
            "{} must compute the same result under {}",
            workload.name,
            config.name()
        );
        overheads.push((*config, m.overhead_pct(&baseline)));
        measurements.push(m);
    }
    Ok(OverheadRow {
        name: workload.name.to_string(),
        cpp: workload.cpp,
        overheads,
        measurements,
    })
}

/// Summary statistics over a set of rows (the Table 1 shape).
pub fn summarize(
    rows: &[OverheadRow],
    config: BuildConfig,
    cpp_filter: Option<bool>,
) -> (f64, f64, f64) {
    let mut values: Vec<f64> = rows
        .iter()
        .filter(|r| cpp_filter.is_none_or(|want| (r.cpp || !want) && (!r.cpp || want)))
        .filter_map(|r| r.overhead(config))
        .collect();
    if values.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    // total_cmp: a NaN overhead (degenerate zero-cycle baseline, see
    // `ExecStats::overhead_pct`) sorts last instead of panicking, so it
    // surfaces as the maximum ("n/a" once formatted) rather than
    // aborting the whole table.
    values.sort_by(|a, b| a.total_cmp(b));
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    let median = values[values.len() / 2];
    let max = *values.last().expect("non-empty");
    (avg, median, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_suite;

    #[test]
    fn measurement_overheads_are_ordered_sanely() {
        // perlbench profile: dispatch-heavy → CPS < CPI overhead, both
        // nonzero; safe stack near zero.
        let w = &spec_suite()[0];
        let row = overhead_row(
            w,
            2,
            &[BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi],
            StoreKind::ArraySuperpage,
        )
        .expect("suite workloads measure cleanly");
        let ss = row.overhead(BuildConfig::SafeStack).unwrap();
        let cps = row.overhead(BuildConfig::Cps).unwrap();
        let cpi = row.overhead(BuildConfig::Cpi).unwrap();
        assert!(ss.abs() < 5.0, "safe stack ~0%, got {ss:.1}%");
        assert!(cps > 0.0, "CPS adds overhead on dispatch, got {cps:.1}%");
        assert!(cpi >= cps, "CPI ({cpi:.1}%) ≥ CPS ({cps:.1}%)");
    }

    #[test]
    fn numeric_workload_is_nearly_free_under_cpi() {
        let suite = spec_suite();
        let lbm = suite.iter().find(|w| w.name == "lbm").unwrap();
        let row =
            overhead_row(lbm, 2, &[BuildConfig::Cpi], StoreKind::ArraySuperpage).expect("measures");
        let cpi = row.overhead(BuildConfig::Cpi).unwrap();
        assert!(
            cpi < 3.0,
            "numeric code under CPI should be ~free, got {cpi:.1}%"
        );
    }

    #[test]
    fn summarize_filters_by_language() {
        let suite = spec_suite();
        let rows: Vec<OverheadRow> = suite
            .iter()
            .take(3) // perlbench, bzip2, gcc — all C
            .map(|w| {
                overhead_row(w, 1, &[BuildConfig::Cpi], StoreKind::ArraySuperpage)
                    .expect("measures")
            })
            .collect();
        let (avg_all, _, _) = summarize(&rows, BuildConfig::Cpi, None);
        let (avg_c, _, _) = summarize(&rows, BuildConfig::Cpi, Some(false));
        assert!((avg_all - avg_c).abs() < 1e-9, "all three rows are C");
        let (avg_cpp, _, _) = summarize(&rows, BuildConfig::Cpi, Some(true));
        assert_eq!(avg_cpp, 0.0);
    }

    #[test]
    fn measurements_record_their_seed() {
        let w = &spec_suite()[1];
        let m = measure(w, 1, BuildConfig::Vanilla, StoreKind::ArraySuperpage).expect("measures");
        assert_eq!(m.seed, levee_core::DEFAULT_SEED);
        let seeded = measure_source_seeded(
            w.name,
            &w.source(1),
            BuildConfig::Vanilla,
            StoreKind::ArraySuperpage,
            42,
        )
        .expect("measures");
        assert_eq!(seeded.seed, 42);
        // Same program, same output, whatever the seed.
        assert_eq!(m.output, seeded.output);
    }

    #[test]
    fn malformed_workload_source_is_an_error_not_a_panic() {
        let err = measure_source(
            "broken",
            "int main() { return undefined; }",
            BuildConfig::Cpi,
            StoreKind::ArraySuperpage,
        )
        .expect_err("must fail to build");
        assert!(matches!(err, LeveeError::Compile { .. }), "{err}");
    }
}
