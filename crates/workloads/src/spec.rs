//! The SPEC-CPU2006-like workload suite: 19 mini-C programs mirroring
//! the pointer-behaviour profile of each C/C++ benchmark the paper
//! evaluates (Fig. 3 / Tables 1–2).
//!
//! We obviously cannot run SPEC itself in this substrate; what the
//! paper's overheads are *made of* is the fraction of memory operations
//! that touch sensitive pointers, and that is what each profile mix
//! reproduces: the perlbench workload dispatches through function
//! pointers, the omnetpp/xalancbmk workloads are dominated by virtual
//! calls, milc/lbm are numeric, and so on (see DESIGN.md).

use crate::kernels::*;

/// One SPEC-like workload.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// SPEC benchmark number + name (e.g. "400.perlbench").
    pub spec_id: &'static str,
    /// Short name.
    pub name: &'static str,
    /// Whether the original is a C++ benchmark (for Table 1's C vs
    /// C/C++ averages).
    pub cpp: bool,
    /// Which kernels the program uses, with per-scale iteration weights.
    pub(crate) mix: &'static [(&'static str, &'static str, u64)],
}

impl Workload {
    /// Generates the workload's source at the given scale (iterations
    /// multiplier; tests use small scales, benches larger ones).
    pub fn source(&self, scale: u64) -> String {
        let mut kernels: Vec<&str> = Vec::new();
        let mut calls: Vec<(&str, u64)> = Vec::new();
        for (kernel_src, kernel_fn, weight) in self.mix {
            if !kernels.contains(kernel_src) {
                kernels.push(kernel_src);
            }
            calls.push((kernel_fn, weight * scale));
        }
        assemble(&kernels, &calls)
    }
}

macro_rules! mix {
    ($(($k:ident, $f:literal, $w:literal)),* $(,)?) => {
        &[$(($k, $f, $w)),*]
    };
}

/// The 19 C/C++ SPEC CPU2006 workload profiles.
pub fn spec_suite() -> Vec<Workload> {
    vec![
        Workload {
            spec_id: "400.perlbench",
            name: "perlbench",
            cpp: false,
            // The opcode-dispatch interpreter plus callback-carrying
            // structs (Perl's internal function-pointer tables).
            mix: mix![
                (DISPATCH, "dispatch_kernel", 60),
                (CBSTRUCT, "cbstruct_kernel", 12),
                (STRINGS, "string_kernel", 6),
                (NUMERIC, "numeric_kernel", 30),
            ],
        },
        Workload {
            spec_id: "401.bzip2",
            name: "bzip2",
            cpp: false,
            mix: mix![
                (BULKCOPY, "bulkcopy_kernel", 12),
                (NUMERIC, "numeric_kernel", 120),
                (BIGSTACK, "bigstack_kernel", 2),
            ],
        },
        Workload {
            spec_id: "403.gcc",
            name: "gcc",
            cpp: false,
            // "it embeds function pointers in some of its data
            // structures and then uses pointers to these structures
            // frequently" (§5.2).
            mix: mix![
                (CBSTRUCT, "cbstruct_kernel", 10),
                (GRAPH, "graph_kernel", 80),
                (NUMERIC, "numeric_kernel", 70),
                (HEAPCHURN, "heap_kernel", 6),
            ],
        },
        Workload {
            spec_id: "429.mcf",
            name: "mcf",
            cpp: false,
            mix: mix![
                (GRAPH, "graph_kernel", 120),
                (NUMERIC, "numeric_kernel", 60)
            ],
        },
        Workload {
            spec_id: "433.milc",
            name: "milc",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 160),
                (BIGSTACK, "bigstack_kernel", 2)
            ],
        },
        Workload {
            spec_id: "444.namd",
            name: "namd",
            cpp: true,
            // Numeric C++ with big hot stack arrays: the benchmark where
            // the safe stack *improved* performance by 4.2%.
            mix: mix![
                (BIGSTACK, "bigstack_kernel", 14),
                (NUMERIC, "numeric_kernel", 60),
                (VCALL, "vcall_kernel", 2),
            ],
        },
        Workload {
            spec_id: "445.gobmk",
            name: "gobmk",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 140),
                (BIGSTACK, "bigstack_kernel", 4),
                (DISPATCH, "dispatch_kernel", 1),
            ],
        },
        Workload {
            spec_id: "447.dealII",
            name: "dealII",
            cpp: true,
            mix: mix![
                (VCALL, "vcall_kernel", 60),
                (NUMERIC, "numeric_kernel", 60),
                (HEAPCHURN, "heap_kernel", 6),
            ],
        },
        Workload {
            spec_id: "450.soplex",
            name: "soplex",
            cpp: true,
            mix: mix![
                (VCALL, "vcall_kernel", 12),
                (NUMERIC, "numeric_kernel", 110),
                (GRAPH, "graph_kernel", 20),
            ],
        },
        Workload {
            spec_id: "453.povray",
            name: "povray",
            cpp: true,
            mix: mix![
                (VCALL, "vcall_kernel", 24),
                (NUMERIC, "numeric_kernel", 80),
                (BIGSTACK, "bigstack_kernel", 6),
                (STRINGS, "string_kernel", 4),
            ],
        },
        Workload {
            spec_id: "456.hmmer",
            name: "hmmer",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 130),
                (BULKCOPY, "bulkcopy_kernel", 4),
                (HEAPCHURN, "heap_kernel", 4),
            ],
        },
        Workload {
            spec_id: "458.sjeng",
            name: "sjeng",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 150),
                (BIGSTACK, "bigstack_kernel", 4),
            ],
        },
        Workload {
            spec_id: "462.libquantum",
            name: "libquantum",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 130),
                (HEAPCHURN, "heap_kernel", 8),
            ],
        },
        Workload {
            spec_id: "464.h264ref",
            name: "h264ref",
            cpp: false,
            mix: mix![
                (BULKCOPY, "bulkcopy_kernel", 16),
                (NUMERIC, "numeric_kernel", 100),
                (CBSTRUCT, "cbstruct_kernel", 3),
            ],
        },
        Workload {
            spec_id: "470.lbm",
            name: "lbm",
            cpp: false,
            mix: mix![(NUMERIC, "numeric_kernel", 170)],
        },
        Workload {
            spec_id: "471.omnetpp",
            name: "omnetpp",
            cpp: true,
            // Discrete-event simulation: virtual dispatch everywhere —
            // the paper's worst case for CPI (36.6% of memory ops).
            mix: mix![
                (VCALL, "vcall_kernel", 130),
                (HEAPCHURN, "heap_kernel", 10),
                (NUMERIC, "numeric_kernel", 10),
            ],
        },
        Workload {
            spec_id: "473.astar",
            name: "astar",
            cpp: true,
            mix: mix![
                (GRAPH, "graph_kernel", 80),
                (NUMERIC, "numeric_kernel", 70),
                (VCALL, "vcall_kernel", 6),
            ],
        },
        Workload {
            spec_id: "482.sphinx3",
            name: "sphinx3",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 110),
                (VCALL, "vcall_kernel", 4),
                (STRINGS, "string_kernel", 6),
            ],
        },
        Workload {
            spec_id: "483.xalancbmk",
            name: "xalancbmk",
            cpp: true,
            // DOM tree walking: virtual calls plus pointer-heavy nodes.
            mix: mix![
                (VCALL, "vcall_kernel", 110),
                (GRAPH, "graph_kernel", 20),
                (STRINGS, "string_kernel", 8),
                (HEAPCHURN, "heap_kernel", 6),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nineteen_benchmarks() {
        let suite = spec_suite();
        assert_eq!(suite.len(), 19);
        let c_count = suite.iter().filter(|w| !w.cpp).count();
        assert_eq!(c_count, 12, "12 C benchmarks"); // paper: C vs C++ split
                                                    // Names unique.
        let mut names: Vec<_> = suite.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_workload_compiles_and_runs() {
        for w in spec_suite() {
            let mut session = levee_core::Session::builder()
                .source(&w.source(1))
                .name(w.name)
                .build()
                .unwrap_or_else(|e| panic!("{} fails to build: {e}", w.name));
            session
                .run_ok(b"")
                .unwrap_or_else(|e| panic!("{} must run cleanly: {e}", w.name));
        }
    }

    #[test]
    fn workload_output_is_scale_dependent_but_deterministic() {
        let w = &spec_suite()[0];
        let run = |scale| {
            let mut session = levee_core::Session::builder()
                .source(&w.source(scale))
                .name(w.name)
                .build()
                .expect("builds");
            session.run(b"").output
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(1), run(3));
    }
}
