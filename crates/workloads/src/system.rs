//! The Phoronix-like system suite (Fig. 4) and the web-server stack
//! (Table 4).
//!
//! The Phoronix workloads model the server-setting benchmarks the paper
//! ran on FreeBSD; the web stack models the paper's
//! Apache + mod_wsgi + Python + SQLite + Django deployment, where the
//! "dynamic page" path runs through an interpreter — the pattern that
//! made CPI's overhead spike to 138.8% on dynamic pages (and on
//! pybench in Fig. 4).

use crate::kernels::*;
use crate::spec::Workload;

macro_rules! mix {
    ($(($k:ident, $f:literal, $w:literal)),* $(,)?) => {
        &[$(($k, $f, $w)),*]
    };
}

/// The Phoronix-like suite ("server" setting).
pub fn phoronix_suite() -> Vec<Workload> {
    vec![
        Workload {
            spec_id: "pts/compress-gzip",
            name: "compress-gzip",
            cpp: false,
            mix: mix![
                (BULKCOPY, "bulkcopy_kernel", 14),
                (NUMERIC, "numeric_kernel", 110)
            ],
        },
        Workload {
            spec_id: "pts/openssl",
            name: "openssl",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 160),
                (BIGSTACK, "bigstack_kernel", 3)
            ],
        },
        Workload {
            spec_id: "pts/sqlite",
            name: "sqlite",
            cpp: false,
            mix: mix![
                (GRAPH, "graph_kernel", 70),
                (STRINGS, "string_kernel", 10),
                (HEAPCHURN, "heap_kernel", 10),
                (NUMERIC, "numeric_kernel", 40),
            ],
        },
        Workload {
            spec_id: "pts/apache",
            name: "apache",
            cpp: false,
            // Module handler tables: light function-pointer dispatch.
            mix: mix![
                (STRINGS, "string_kernel", 16),
                (DISPATCH, "dispatch_kernel", 8),
                (NUMERIC, "numeric_kernel", 70),
                (BULKCOPY, "bulkcopy_kernel", 6),
            ],
        },
        Workload {
            spec_id: "pts/pybench",
            name: "pybench",
            cpp: false,
            // A bytecode interpreter: the Fig. 4 outlier under CPI.
            mix: mix![
                (DISPATCH, "dispatch_kernel", 90),
                (CBSTRUCT, "cbstruct_kernel", 20),
                (HEAPCHURN, "heap_kernel", 12),
                (NUMERIC, "numeric_kernel", 10),
            ],
        },
        Workload {
            spec_id: "pts/phpbench",
            name: "phpbench",
            cpp: false,
            mix: mix![
                (DISPATCH, "dispatch_kernel", 40),
                (STRINGS, "string_kernel", 14),
                (NUMERIC, "numeric_kernel", 50),
            ],
        },
        Workload {
            spec_id: "pts/encode-mp3",
            name: "encode-mp3",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 150),
                (BULKCOPY, "bulkcopy_kernel", 4)
            ],
        },
        Workload {
            spec_id: "pts/ffmpeg",
            name: "ffmpeg",
            cpp: false,
            mix: mix![
                (BULKCOPY, "bulkcopy_kernel", 12),
                (NUMERIC, "numeric_kernel", 110),
                (CBSTRUCT, "cbstruct_kernel", 4),
            ],
        },
        Workload {
            spec_id: "pts/john-the-ripper",
            name: "john-the-ripper",
            cpp: false,
            mix: mix![
                (NUMERIC, "numeric_kernel", 140),
                (BIGSTACK, "bigstack_kernel", 6)
            ],
        },
        Workload {
            spec_id: "pts/pgbench",
            name: "pgbench",
            cpp: false,
            mix: mix![
                (GRAPH, "graph_kernel", 50),
                (STRINGS, "string_kernel", 10),
                (HEAPCHURN, "heap_kernel", 12),
                (VCALL, "vcall_kernel", 8),
                (NUMERIC, "numeric_kernel", 40),
            ],
        },
    ]
}

/// The three web-stack workloads of Table 4. Each program handles
/// `scale` requests; throughput = requests ÷ cycles.
pub fn web_stack() -> Vec<Workload> {
    vec![
        Workload {
            spec_id: "web/static-page",
            name: "static-page",
            cpp: false,
            // Serve a file: header strings + content copy.
            mix: mix![
                (STRINGS, "string_kernel", 8),
                (BULKCOPY, "bulkcopy_kernel", 14),
                (NUMERIC, "numeric_kernel", 30),
            ],
        },
        Workload {
            spec_id: "web/wsgi",
            name: "wsgi-test-page",
            cpp: false,
            // Gateway dispatch into a tiny handler.
            mix: mix![
                (STRINGS, "string_kernel", 8),
                (DISPATCH, "dispatch_kernel", 14),
                (CBSTRUCT, "cbstruct_kernel", 4),
                (NUMERIC, "numeric_kernel", 30),
            ],
        },
        Workload {
            spec_id: "web/dynamic-page",
            name: "dynamic-page",
            cpp: false,
            // Full interpreter path: template rendering in "Python".
            mix: mix![
                (DISPATCH, "dispatch_kernel", 70),
                (CBSTRUCT, "cbstruct_kernel", 30),
                (HEAPCHURN, "heap_kernel", 14),
                (VCALL, "vcall_kernel", 10),
                (STRINGS, "string_kernel", 6),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn system_workloads_compile_and_run() {
        for w in phoronix_suite().iter().chain(web_stack().iter()) {
            let mut session = levee_core::Session::builder()
                .source(&w.source(1))
                .name(w.name)
                .build()
                .unwrap_or_else(|e| panic!("{} fails: {e}", w.name));
            session
                .run_ok(b"")
                .unwrap_or_else(|e| panic!("{} must run cleanly: {e}", w.name));
        }
    }

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(phoronix_suite().len(), 10);
        assert_eq!(web_stack().len(), 3);
    }
}
