//! A gallery of classic control-flow hijacks from the RIPE-like suite,
//! run against the paper's protection line-up. Each row is one attack;
//! each column one defense.
//!
//! Run with: `cargo run --example attack_gallery`

use levee::core::BuildConfig;
use levee::defenses::Deployment;
use levee::ripe::{
    run_attack, AbuseFn, Attack, AttackResult, Location, Payload, Profile, Target, Technique,
};

fn main() {
    let attacks = [
        (
            "stack smash → shellcode",
            Attack {
                location: Location::Stack,
                target: Target::RetAddr,
                technique: Technique::Direct,
                abuse: AbuseFn::ReadInput,
                payload: Payload::Shellcode,
            },
        ),
        (
            "stack smash → ret2libc",
            Attack {
                location: Location::Stack,
                target: Target::RetAddr,
                technique: Technique::Direct,
                abuse: AbuseFn::Memcpy,
                payload: Payload::Ret2Libc,
            },
        ),
        (
            "indirect write → ROP",
            Attack {
                location: Location::Stack,
                target: Target::RetAddr,
                technique: Technique::Indirect,
                abuse: AbuseFn::ReadInput,
                payload: Payload::Rop,
            },
        ),
        (
            "heap fptr overwrite",
            Attack {
                location: Location::Heap,
                target: Target::FuncPtr,
                technique: Technique::Direct,
                abuse: AbuseFn::LoopCopy,
                payload: Payload::FuncReuse,
            },
        ),
        (
            "longjmp buffer hijack",
            Attack {
                location: Location::Bss,
                target: Target::LongjmpBuf,
                technique: Technique::Direct,
                abuse: AbuseFn::ReadInput,
                payload: Payload::Ret2Libc,
            },
        ),
    ];
    let profiles = [
        ("legacy", Profile::Deployment(Deployment::Legacy)),
        ("deployed", Profile::Deployment(Deployment::Deployed)),
        ("safestack", Profile::Levee(BuildConfig::SafeStack)),
        ("CPS", Profile::Levee(BuildConfig::Cps)),
        ("CPI", Profile::Levee(BuildConfig::Cpi)),
    ];

    print!("{:<26}", "attack \\ defense");
    for (name, _) in &profiles {
        print!("{name:>12}");
    }
    println!();
    println!("{}", "-".repeat(26 + 12 * profiles.len()));
    for (label, attack) in &attacks {
        print!("{label:<26}");
        for (_, profile) in &profiles {
            let cell = match run_attack(attack, profile, 0xCAFE) {
                AttackResult::Hijacked => "HIJACKED",
                AttackResult::Detected(_) => "detected",
                AttackResult::Crashed(_) => "crashed",
                AttackResult::Survived => "survived",
            };
            print!("{cell:>12}");
        }
        println!();
    }
    println!(
        "\nHIJACKED = the attacker reached their goal; anything else = prevented.\n\
         Note the paper's shape: legacy loses everything, the deployed baseline\n\
         loses selectively, CPS/CPI lose nothing."
    );
}
