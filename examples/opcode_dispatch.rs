//! The Perl-opcode-dispatch story of §3.3: a bytecode interpreter whose
//! handler table gets corrupted.
//!
//! * Coarse CFI admits *any* function as an indirect-call target — the
//!   attacker executes an arbitrary "opcode" that is not even a handler.
//! * CPS admits only code pointers the program actually assigned: the
//!   corrupted regular copy of the table entry is never consulted.
//!
//! Run with: `cargo run --example opcode_dispatch`

use levee::core::{build_source, BuildConfig};
use levee::defenses::{passes, Deployment};
use levee::vm::{ExitStatus, GoalKind, Machine, Trap, VmConfig};

/// A tiny bytecode VM: opcode handlers dispatched through a table.
/// `secret_admin` is a function that exists in the binary but is never
/// in the table (think: an unexported debug routine).
const SRC: &str = r#"
    long acc;
    void op_push(int v) { acc = acc * 10 + v; }
    void op_add(int v)  { acc = acc + v; }
    void op_neg(int v)  { acc = 0 - acc; }
    void secret_admin(int v) { print_str("ADMIN MODE"); }

    char program[64];
    void (*optable[3])(int) = {op_push, op_add, op_neg};

    int main() {
        acc = 0;
        long n = read_input(program, -1);   /* bytecode... and overflow */
        long i;
        for (i = 0; i < 4; i = i + 1) {
            long op = (long)program[i] & 3;
            if (op < 3) { optable[op]((int)program[i + 4] & 15); }
        }
        print_int(acc);
        return 0;
    }
"#;

fn run_with(name: &str, module: &levee::ir::Module, cfg: VmConfig, payload: &[u8]) {
    let mut vm = Machine::new(module, cfg);
    let admin = vm.func_entry("secret_admin").expect("exists");
    vm.add_goal(admin, GoalKind::FuncReuse);
    let out = vm.run(payload);
    let verdict = match &out.status {
        ExitStatus::Trapped(Trap::Hijacked { .. }) => "HIJACKED — attacker ran secret_admin",
        ExitStatus::Trapped(t) => &format!("stopped ({t:?})"),
        ExitStatus::Exited(_) => "survived — corrupted copy ignored",
    };
    println!("{name:<28} {verdict}");
}

fn main() {
    // Payload: 64 bytes of "bytecode" filler that overflows into
    // optable[0], redirecting it to secret_admin.
    let probe = levee::minic::compile(SRC, "probe").expect("compiles");
    let vm = Machine::new(&probe, VmConfig::default());
    let admin = vm.func_entry("secret_admin").expect("exists");
    let mut payload = vec![0u8; 64];
    payload.extend_from_slice(&admin.to_le_bytes());

    println!("corrupting the interpreter's opcode table:\n");

    // Vanilla.
    let vanilla = levee::minic::compile(SRC, "interp").unwrap();
    run_with("no protection", &vanilla, VmConfig::default(), &payload);

    // Coarse CFI: secret_admin is a valid function → bypassed.
    let mut coarse = levee::minic::compile(SRC, "interp").unwrap();
    Deployment::CoarseCfi.apply(&mut coarse);
    run_with(
        "coarse CFI (any function)",
        &coarse,
        Deployment::CoarseCfi.vm_config(VmConfig::default()),
        &payload,
    );

    // Type-based CFI: secret_admin has the same signature as the
    // handlers — whether it is admitted depends on the address-taken
    // set, the exact imprecision the paper criticizes.
    let mut typed = levee::minic::compile(SRC, "interp").unwrap();
    passes::cfi(&mut typed, levee::ir::CfiPolicy::AnyFunction, false);
    run_with(
        "CFI, merged target sets",
        &typed,
        VmConfig::default(),
        &payload,
    );

    // CPS: the table entries live in the safe pointer store.
    let cps = build_source(SRC, "interp", BuildConfig::Cps).unwrap();
    run_with(
        "CPS",
        &cps.module,
        cps.vm_config(VmConfig::default()),
        &payload,
    );

    // CPI: ditto, plus bounds checks on the table accesses themselves.
    let cpi = build_source(SRC, "interp", BuildConfig::Cpi).unwrap();
    run_with(
        "CPI",
        &cpi.module,
        cpi.vm_config(VmConfig::default()),
        &payload,
    );

    println!(
        "\n§3.3: \"a memory bug in a CFI-protected Perl interpreter may permit an\n\
         attacker to divert control flow and execute any Perl opcode, whereas in a\n\
         CPS-protected Perl interpreter the attacker could at most execute an\n\
         opcode that exists in the running Perl program.\""
    );
}
