//! The Perl-opcode-dispatch story of §3.3 — run on the bytecode tier.
//!
//! Doubly apt: the *guest* program is a bytecode interpreter whose
//! handler table gets corrupted, and the *host* VM now executes it as
//! compiled bytecode too (`levee-bc` + the fast-dispatch engine), with
//! the original CFG step-walker kept as a differential reference.
//!
//! Two demonstrations:
//!
//! 1. **Security is engine-independent.** The corrupted-table attack is
//!    replayed under coarse CFI, CPS and CPI on *both* engines: the
//!    verdicts (and simulated cycle counts) are identical — the
//!    bytecode tier changes wall-clock time, never outcomes.
//! 2. **Dispatch is faster.** The same guest interpreter runs a hot
//!    opcode loop under both engines at identical cycle counts; the
//!    wall-clock difference is pure interpreter-overhead elimination.
//!
//! Each configuration is one `levee::Session`; the engine pivot is a
//! `Session::reconfigure` on the same built module.
//!
//! Run with: `cargo run --release --example opcode_dispatch`

use std::time::Instant;

use levee::defenses::Deployment;
use levee::vm::{Engine, ExitStatus, GoalKind, Trap, VmConfig};
use levee::{BuildConfig, Session};

/// A tiny bytecode VM: opcode handlers dispatched through a table.
/// `secret_admin` is a function that exists in the binary but is never
/// in the table (think: an unexported debug routine).
const SRC: &str = r#"
    long acc;
    void op_push(int v) { acc = acc * 10 + v; }
    void op_add(int v)  { acc = acc + v; }
    void op_neg(int v)  { acc = 0 - acc; }
    void secret_admin(int v) { print_str("ADMIN MODE"); }

    char program[64];
    void (*optable[3])(int) = {op_push, op_add, op_neg};

    int main() {
        acc = 0;
        long n = read_input(program, -1);   /* bytecode... and overflow */
        long i;
        for (i = 0; i < 4; i = i + 1) {
            long op = (long)program[i] & 3;
            if (op < 3) { optable[op]((int)program[i + 4] & 15); }
        }
        print_int(acc);
        return 0;
    }
"#;

/// A hot dispatch loop for the wall-clock comparison.
const HOT: &str = r#"
    long acc;
    void op_add(int v) { acc = acc + v; }
    void op_mul(int v) { acc = acc * 3 + v; }
    void op_xor(int v) { acc = acc ^ v; }
    void (*table[3])(int) = {op_add, op_mul, op_xor};
    int main() {
        acc = 1;
        long i;
        for (i = 0; i < 300000; i = i + 1) {
            table[i % 3]((int)(i & 15));
        }
        print_int(acc & 65535);
        return 0;
    }
"#;

/// One session per protection profile; built once, replayed per engine.
fn profile_session(name: &str) -> Session {
    match name {
        "no protection" => Session::builder()
            .source(SRC)
            .name("interp")
            .vm_config(VmConfig::default())
            .build()
            .expect("compiles"),
        "coarse CFI (any function)" => {
            let mut m = levee::minic::compile(SRC, "interp").unwrap();
            Deployment::CoarseCfi.apply(&mut m);
            Session::builder()
                .module(m)
                .name("interp")
                .vm_config(Deployment::CoarseCfi.vm_config(VmConfig::default()))
                .build()
                .expect("compiles")
        }
        "CPS" => Session::builder()
            .source(SRC)
            .name("interp")
            .protection(BuildConfig::Cps)
            .vm_config(VmConfig::default())
            .build()
            .expect("compiles"),
        _ => Session::builder()
            .source(SRC)
            .name("interp")
            .protection(BuildConfig::Cpi)
            .vm_config(VmConfig::default())
            .build()
            .expect("compiles"),
    }
}

fn verdict(session: &mut Session, engine: Engine, payload: &[u8]) -> (String, u64) {
    session.reconfigure(move |cfg| cfg.engine = engine);
    let admin = session.func_entry("secret_admin").expect("exists");
    session.add_goal(admin, GoalKind::FuncReuse);
    let out = session.run(payload);
    let v = match &out.status {
        ExitStatus::Trapped(Trap::Hijacked { .. }) => "HIJACKED — attacker ran secret_admin".into(),
        ExitStatus::Trapped(t) => format!("stopped ({t:?})"),
        ExitStatus::Exited(_) => "survived — corrupted copy ignored".into(),
    };
    (v, out.exec.cycles)
}

fn main() {
    // Payload: 64 bytes of "bytecode" filler that overflows into
    // optable[0], redirecting it to secret_admin.
    let probe = Session::builder()
        .source(SRC)
        .name("probe")
        .vm_config(VmConfig::default())
        .build()
        .expect("compiles");
    let admin = probe.func_entry("secret_admin").expect("exists");
    let mut payload = vec![0u8; 64];
    payload.extend_from_slice(&admin.to_le_bytes());

    println!("corrupting the guest interpreter's opcode table:\n");
    println!("{:<28} {:<44} {:<44}", "", "walk engine", "bytecode engine");

    for name in ["no protection", "coarse CFI (any function)", "CPS", "CPI"] {
        let mut session = profile_session(name);
        let (wv, wc) = verdict(&mut session, Engine::Walk, &payload);
        let (bv, bcles) = verdict(&mut session, Engine::Bytecode, &payload);
        assert_eq!(wv, bv, "engines must agree on the security verdict");
        assert_eq!(wc, bcles, "engines must agree on simulated cycles");
        println!("{name:<28} {wv:<44} {bv:<44}");
    }

    // The compiled form of the guest, for the curious.
    let built = levee::core::build_source(SRC, "interp", BuildConfig::Cpi).unwrap();
    let compiled = levee::bc::compile(&built.module);
    println!(
        "\nguest compiled to bytecode: {} functions, {} words of code, {} signature entries",
        compiled.funcs.len(),
        compiled.code_words(),
        compiled.sigs.len(),
    );

    // Wall-clock: same cycles, less time. One session, one build; the
    // engine flip is a reconfigure.
    println!("\nhot dispatch loop (300k table calls), identical simulated cycles:");
    let mut hot = Session::builder()
        .source(HOT)
        .name("hot")
        .protection(BuildConfig::Cpi)
        .vm_config(VmConfig::default())
        .build()
        .unwrap();
    let mut wall = [0.0f64; 2];
    let mut cycles = [0u64; 2];
    for (i, engine) in [Engine::Walk, Engine::Bytecode].iter().enumerate() {
        hot.reconfigure(|cfg| cfg.engine = *engine);
        hot.precompile();
        let t0 = Instant::now();
        let out = hot.run(b"");
        wall[i] = t0.elapsed().as_secs_f64() * 1e3;
        cycles[i] = out.exec.cycles;
        assert!(out.success());
        println!(
            "  {:<10} {:>8.1} ms   {} cycles",
            engine.name(),
            wall[i],
            cycles[i]
        );
    }
    assert_eq!(cycles[0], cycles[1]);
    println!("  speedup    {:>7.2}x", wall[0] / wall[1]);

    println!(
        "\n§3.3: \"a memory bug in a CFI-protected Perl interpreter may permit an\n\
         attacker to divert control flow and execute any Perl opcode, whereas in a\n\
         CPS-protected Perl interpreter the attacker could at most execute an\n\
         opcode that exists in the running Perl program.\""
    );
}
