//! Quickstart: compile a vulnerable C program, exploit it, then rebuild
//! it with `-fcpi` and watch the same exploit die — all through
//! `levee::Session`, the embedding front door.
//!
//! Run with: `cargo run --example quickstart`

use levee::ir::Intrinsic;
use levee::vm::{ExitStatus, GoalKind, Trap};
use levee::{BuildConfig, Session};

/// A server-ish program with a classic bug: an unbounded read into a
/// global buffer sitting right below a function pointer.
const SRC: &str = r#"
    void handle_ok(int code) { print_str("served page"); }
    char reqbuf[64];
    void (*on_request)(int);

    int main() {
        on_request = handle_ok;
        read_input(reqbuf, -1);     /* the vulnerability */
        on_request(200);
        return 0;
    }
"#;

fn main() {
    // --- 1. The unprotected build falls to a ret2libc-style hijack. ---
    let mut vanilla = Session::builder()
        .source(SRC)
        .name("server")
        .build()
        .expect("compiles");
    let system = vanilla.intrinsic_entry(Intrinsic::System);
    vanilla.add_goal(system, GoalKind::Ret2Libc);

    // 64 filler bytes reach the function-pointer slot; the payload
    // overwrites it with system()'s address.
    let mut payload = vec![b'A'; 64];
    payload.extend_from_slice(&system.to_le_bytes());

    let out = vanilla.run(&payload);
    println!("vanilla build:   {:?}", out.status);
    assert!(
        matches!(out.status, ExitStatus::Trapped(Trap::Hijacked { .. })),
        "the unprotected server must be hijackable"
    );

    // --- 2. Rebuild with -fcpi: same program, same payload. ---
    let config = BuildConfig::from_flag("-fcpi").expect("levee flag");
    let mut cpi = Session::builder()
        .source(SRC)
        .name("server")
        .protection(config)
        .build()
        .expect("compiles");
    let system = cpi.intrinsic_entry(Intrinsic::System);
    cpi.add_goal(system, GoalKind::Ret2Libc);

    let out = cpi.run(&payload);
    println!(
        "CPI build:       {:?} (output: {:?})",
        out.status, out.output
    );
    assert_eq!(
        out.status,
        ExitStatus::Exited(0),
        "under CPI the authentic pointer lives in the safe store; the \
         corrupted regular copy is never used"
    );
    assert_eq!(out.output, "served page");

    // --- 3. The server keeps serving: the resident machine is reset
    // between runs, so one session handles request after request. ---
    let followups = cpi.run_batch([&payload[..], b"GET /", b"GET /again"]);
    assert!(followups.iter().all(|r| r.success()));
    println!(
        "served {} more requests from the resident session",
        followups.len()
    );

    // --- 4. What it cost. ---
    let stats = cpi.build_stats();
    println!(
        "instrumented {} of {} memory operations ({:.1}%)",
        stats.instrumented_mem_ops,
        stats.mem_ops,
        stats.mo_fraction() * 100.0
    );
    println!("quickstart: attack hijacked vanilla, silently defeated by CPI ✓");
}
