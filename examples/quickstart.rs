//! Quickstart: compile a vulnerable C program, exploit it, then rebuild
//! it with `-fcpi` and watch the same exploit die.
//!
//! Run with: `cargo run --example quickstart`

use levee::core::{build_source, BuildConfig};
use levee::ir::Intrinsic;
use levee::vm::{ExitStatus, GoalKind, Machine, Trap, VmConfig};

/// A server-ish program with a classic bug: an unbounded read into a
/// global buffer sitting right below a function pointer.
const SRC: &str = r#"
    void handle_ok(int code) { print_str("served page"); }
    char reqbuf[64];
    void (*on_request)(int);

    int main() {
        on_request = handle_ok;
        read_input(reqbuf, -1);     /* the vulnerability */
        on_request(200);
        return 0;
    }
"#;

fn main() {
    // --- 1. The unprotected build falls to a ret2libc-style hijack. ---
    let vanilla = build_source(SRC, "server", BuildConfig::Vanilla).expect("compiles");
    let mut vm = Machine::new(&vanilla.module, VmConfig::default());
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);

    // 64 filler bytes reach the function-pointer slot; the payload
    // overwrites it with system()'s address.
    let mut payload = vec![b'A'; 64];
    payload.extend_from_slice(&system.to_le_bytes());

    let out = vm.run(&payload);
    println!("vanilla build:   {:?}", out.status);
    assert!(
        matches!(out.status, ExitStatus::Trapped(Trap::Hijacked { .. })),
        "the unprotected server must be hijackable"
    );

    // --- 2. Rebuild with -fcpi: same program, same payload. ---
    let config = BuildConfig::from_flag("-fcpi").expect("levee flag");
    let cpi = build_source(SRC, "server", config).expect("compiles");
    let mut vm = Machine::new(&cpi.module, cpi.vm_config(VmConfig::default()));
    let system = vm.intrinsic_entry(Intrinsic::System);
    vm.add_goal(system, GoalKind::Ret2Libc);

    let out = vm.run(&payload);
    println!(
        "CPI build:       {:?} (output: {:?})",
        out.status, out.output
    );
    assert_eq!(
        out.status,
        ExitStatus::Exited(0),
        "under CPI the authentic pointer lives in the safe store; the \
         corrupted regular copy is never used"
    );
    assert_eq!(out.output, "served page");

    // --- 3. What it cost. ---
    println!(
        "instrumented {} of {} memory operations ({:.1}%)",
        cpi.stats.instrumented_mem_ops,
        cpi.stats.mem_ops,
        cpi.stats.mo_fraction() * 100.0
    );
    println!("quickstart: attack hijacked vanilla, silently defeated by CPI ✓");
}
