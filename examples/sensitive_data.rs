//! Protecting non-code-pointer data (§3.2.1 / §4 "Sensitive data
//! protection"): the FreeBSD `struct ucred` use-case. A privilege
//! record is reached through a pointer; an overflow redirects that
//! pointer at a forged record with uid 0.
//!
//! With the struct annotated `__sensitive`, pointers to it become
//! sensitive: they live in the safe pointer store and the forgery is
//! ignored. Without the annotation, even CPI lets the attack through —
//! CPI protects code pointers, and protecting *data* requires opting in.
//!
//! Run with: `cargo run --example sensitive_data`

use levee::{BuildConfig, Session};

fn program(annotated: bool) -> String {
    let kw = if annotated { "__sensitive " } else { "" };
    format!(
        r#"
        {kw}struct ucred {{ int uid; int gid; }};
        struct ucred root_cred;
        char reqbuf[64];
        struct ucred* active;

        int main() {{
            root_cred.uid = 1000;
            root_cred.gid = 1000;
            active = &root_cred;
            read_input(reqbuf, -1);    /* overflow reaches `active` */
            print_int(active->uid);    /* the privilege check */
            return 0;
        }}
    "#
    )
}

fn attack(annotated: bool, config: BuildConfig) -> String {
    let mut session = Session::builder()
        .source(&program(annotated))
        .name("ucred")
        .protection(config)
        .build()
        .expect("compiles");
    // Forge a ucred with uid 0 *inside the request buffer*, then point
    // `active` at it: 8 bytes of fake record, padding, then the forged
    // pointer value (reqbuf's own address, learned from the binary).
    let reqbuf = session.global_addr("reqbuf").expect("global");
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes()); // fake uid = 0 (root!)
    payload.extend_from_slice(&0u32.to_le_bytes()); // fake gid
    payload.extend(std::iter::repeat_n(b'A', 64 - 8));
    payload.extend_from_slice(&reqbuf.to_le_bytes()); // active → fake record
    let out = session.run(&payload);
    format!("{:?} → uid printed: {}", out.status, out.output)
}

fn main() {
    println!("privilege record attack (forge ucred, redirect the pointer):\n");
    println!(
        "vanilla, unannotated:        {}",
        attack(false, BuildConfig::Vanilla)
    );
    println!(
        "CPI, unannotated:            {}",
        attack(false, BuildConfig::Cpi)
    );
    println!(
        "CPI, __sensitive annotation: {}",
        attack(true, BuildConfig::Cpi)
    );
    println!(
        "\nExpected: the first two print uid 0 (privilege escalation); the\n\
         annotated build prints 1000 — `active` lives in the safe store, so\n\
         the overflow wrote only the unused regular copy. This is the paper's\n\
         \"process UIDs in a kernel\" extension of CPI beyond code pointers."
    );
}
