//! The §5.3 FreeBSD web-stack scenario in miniature: measure the
//! throughput cost of SafeStack/CPS/CPI on the static, wsgi-like and
//! dynamic (interpreter) request paths — Table 4's experiment as a
//! library call — then serve the dynamic page from one resident
//! `levee::Session`, the way a real embedding would.
//!
//! Run with: `cargo run --release --example webserver`

use levee::vm::StoreKind;
use levee::{BuildConfig, LeveeError, Session};
use levee_workloads::{measure, web_stack};

fn main() -> Result<(), LeveeError> {
    let requests = 32;
    println!("web stack, {requests} requests per page type (Table 4 shape)\n");
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10}",
        "page", "req/Mcycle", "SafeStack", "CPS", "CPI"
    );
    for w in web_stack() {
        let base = measure(
            &w,
            requests,
            BuildConfig::Vanilla,
            StoreKind::ArraySuperpage,
        )?;
        let throughput = requests as f64 / (base.exec.cycles as f64 / 1e6);
        let mut cells = Vec::new();
        for config in [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi] {
            let m = measure(&w, requests, config, StoreKind::ArraySuperpage)?;
            assert_eq!(m.output, base.output, "differential check");
            cells.push(format!("{:+.1}%", m.overhead_pct(&base)));
        }
        println!(
            "{:<16} {:>12.1} {:>10} {:>10} {:>10}",
            w.name, throughput, cells[0], cells[1], cells[2]
        );
    }

    // A real server builds once and keeps serving: one resident session,
    // one compile, one module load — `run_batch` resets the machine
    // between requests.
    let dynamic = &web_stack()[2];
    let mut server = Session::builder()
        .source(&dynamic.source(1))
        .name(dynamic.name)
        .protection(BuildConfig::Cpi)
        .store(StoreKind::ArraySuperpage)
        .build()?;
    let served = server.run_batch(std::iter::repeat_n(b"", 8));
    assert!(served.iter().all(|r| r.success()));
    println!(
        "\nresident CPI session served {} dynamic-page requests from one build",
        served.len()
    );

    println!(
        "\nThe dynamic page renders through an interpreter (function-pointer\n\
         dispatch per template op) — the same pattern that cost the paper's\n\
         Django stack 138.8% under CPI while static pages paid 16.9%."
    );
    Ok(())
}
