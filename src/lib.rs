//! # levee — a reproduction of "Code-Pointer Integrity" (OSDI 2014)
//!
//! A from-scratch Rust implementation of Kuznetsov et al.'s CPI/CPS/
//! SafeStack system, complete with the compiler and machine substrate
//! needed to run and attack protected programs:
//!
//! | crate | role |
//! |---|---|
//! | [`minic`] | mini-C frontend (lexer → parser → IR lowering) |
//! | [`ir`] | typed IR shared by all passes |
//! | [`bc`] | bytecode tier: IR → compact linear bytecode for the fast engine |
//! | [`core`] | **the paper's contribution**: sensitivity analysis, safe stack, CPI/CPS/SoftBound instrumentation, the Levee driver |
//! | [`rt`] | safe pointer store organizations (array / two-level / hash) |
//! | [`vm`] | execution substrate: split memory, isolation models, cycle+cache cost model, attacker API |
//! | [`defenses`] | baselines: DEP, ASLR, stack cookies, shadow stack, CFI |
//! | [`ripe`] | RIPE-like attack benchmark (§5.1) |
//! | [`workloads`] | SPEC-like / Phoronix-like / web-stack workloads (§5.2–5.3) |
//! | [`formal`] | Appendix A operational semantics, executable |
//!
//! ## Quickstart
//!
//! [`Session`] is the front door: compile once, keep a resident
//! machine, run as often as you like (the machine is re-armed with
//! `Machine::reset` between runs — bit-identical to a fresh build, at
//! none of the per-run build cost):
//!
//! ```
//! use levee::{BuildConfig, Session};
//!
//! let src = r#"
//!     void greet(int x) { print_int(x); }
//!     void (*cb)(int);
//!     int main() { cb = greet; cb(42); return 0; }
//! "#;
//! let mut session = Session::builder()
//!     .source(src)
//!     .protection(BuildConfig::Cpi)
//!     .build()
//!     .expect("valid mini-C");
//! let report = session.run(b"");
//! assert!(report.success());
//! assert_eq!(report.output, "42");
//! ```
//!
//! For multi-worker serving, [`SessionPool`] compiles once and shards
//! request batches across N resident machines forked from one shared
//! copy-on-write boot snapshot — bit-identical to serial serving.
//!
//! See `examples/` for attack/defense walkthroughs and `DESIGN.md` /
//! `EXPERIMENTS.md` for the experiment index.

pub use levee_core::{
    json_f64, json_str, BuildConfig, LeveeError, RunReport, Session, SessionBuilder, SessionPool,
    SessionPoolBuilder,
};

pub use levee_bc as bc;
pub use levee_core as core;
pub use levee_defenses as defenses;
pub use levee_formal as formal;
pub use levee_ir as ir;
pub use levee_minic as minic;
pub use levee_ripe as ripe;
pub use levee_rt as rt;
pub use levee_vm as vm;
pub use levee_workloads as workloads;
