//! Differential correctness sweep: every workload in every suite must
//! compute the identical result under every protection configuration,
//! every safe-pointer-store organization, and every isolation model —
//! the "all benchmarks that compiled and worked on vanilla FreeBSD also
//! compiled and worked in the CPI, CPS and SafeStack versions" claim of
//! §5.3, made mechanical.

use levee::vm::StoreKind;
use levee::workloads::{phoronix_suite, spec_suite, web_stack};
use levee::{BuildConfig, Session};

fn run(src: &str, name: &str, config: BuildConfig, store: StoreKind) -> String {
    let mut session = Session::builder()
        .source(src)
        .name(name)
        .protection(config)
        .store(store)
        .seed(7)
        .build()
        .expect("builds");
    let out = session
        .run_ok(b"")
        .unwrap_or_else(|e| panic!("{name} under {} ({store:?}): {e}", config.name()));
    out.output
}

#[test]
fn every_suite_workload_agrees_across_all_configs() {
    let all: Vec<_> = spec_suite()
        .into_iter()
        .chain(phoronix_suite())
        .chain(web_stack())
        .collect();
    for w in &all {
        let src = w.source(1);
        let baseline = run(
            &src,
            w.name,
            BuildConfig::Vanilla,
            StoreKind::ArraySuperpage,
        );
        for config in [
            BuildConfig::SafeStack,
            BuildConfig::Cps,
            BuildConfig::Cpi,
            BuildConfig::SoftBound,
        ] {
            let out = run(&src, w.name, config, StoreKind::ArraySuperpage);
            assert_eq!(out, baseline, "{} diverged under {}", w.name, config.name());
        }
    }
}

#[test]
fn cpi_agrees_across_store_organizations() {
    // Store organization must never change semantics, only cost.
    let w = &spec_suite()[0]; // perlbench-like: dispatch-heavy
    let src = w.source(1);
    let mut outputs: Vec<String> = StoreKind::all()
        .iter()
        .map(|store| run(&src, w.name, BuildConfig::Cpi, *store))
        .collect();
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "store organizations diverged");
}
