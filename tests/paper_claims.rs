//! The paper's headline claims, as assertions. Each test names the
//! claim it checks; EXPERIMENTS.md records the measured numbers.

use levee::core::BuildConfig;
use levee::defenses::Deployment;
use levee::ripe::{all_attacks, evaluate, Profile};
use levee::vm::StoreKind;
use levee::workloads::{overhead_row, spec_suite, summarize};

/// "CPI … prevents all control-flow hijack attacks" + "they prevent
/// 100% of the attacks in the RIPE benchmark" — on a suite subset for
/// test-time budget; the full matrix runs in `levee-ripe`'s tests and
/// the `ripe_eval` binary.
#[test]
fn cpi_and_cps_prevent_every_ripe_attack() {
    let attacks: Vec<_> = all_attacks().into_iter().step_by(3).collect();
    for config in [BuildConfig::Cps, BuildConfig::Cpi] {
        let tally = evaluate(&attacks, &Profile::Levee(config), 0xABCD);
        assert_eq!(
            tally.successes(),
            0,
            "{} leaked {:?}",
            config.name(),
            tally.hijacked.iter().map(|a| a.id()).collect::<Vec<_>>()
        );
    }
}

/// "on vanilla Ubuntu 6.06 … 833–848 exploits succeed" — i.e. an
/// undefended system loses the large majority.
#[test]
fn legacy_loses_the_majority() {
    let attacks: Vec<_> = all_attacks().into_iter().step_by(3).collect();
    let tally = evaluate(&attacks, &Profile::Deployment(Deployment::Legacy), 0xABCD);
    assert!(
        tally.successes() * 2 > tally.total(),
        "{}/{}",
        tally.successes(),
        tally.total()
    );
}

/// Table 1's cost ladder on the SPEC-like suite: SafeStack ≈ 0,
/// CPS low, CPI moderate, with the C++ (vtable-heavy) benchmarks paying
/// more under CPI than the C ones.
#[test]
fn table1_cost_ladder() {
    let configs = [BuildConfig::SafeStack, BuildConfig::Cps, BuildConfig::Cpi];
    let rows: Vec<_> = spec_suite()
        .iter()
        .map(|w| overhead_row(w, 1, &configs, StoreKind::ArraySuperpage).expect("measures"))
        .collect();
    let (ss_avg, _, _) = summarize(&rows, BuildConfig::SafeStack, None);
    let (cps_avg, _, _) = summarize(&rows, BuildConfig::Cps, None);
    let (cpi_avg, _, cpi_max) = summarize(&rows, BuildConfig::Cpi, None);
    let (cpi_c_avg, _, _) = summarize(&rows, BuildConfig::Cpi, Some(false));
    let (cpi_cpp_avg, _, _) = summarize(&rows, BuildConfig::Cpi, Some(true));

    assert!(ss_avg.abs() < 1.5, "SafeStack avg ≈ 0%, got {ss_avg:.1}%");
    assert!(cps_avg < cpi_avg, "CPS ({cps_avg:.1}) < CPI ({cpi_avg:.1})");
    assert!(
        cpi_avg > 2.0 && cpi_avg < 25.0,
        "CPI average in the paper's regime, got {cpi_avg:.1}%"
    );
    assert!(
        cpi_cpp_avg > cpi_c_avg,
        "C++ pays more under CPI ({cpi_cpp_avg:.1}% vs {cpi_c_avg:.1}%)"
    );
    assert!(
        cpi_max > 15.0,
        "the vtable outlier exists, got {cpi_max:.1}%"
    );
}

/// "state-of-the-art memory safety implementations for C/C++ incur ≥2×
/// overhead" vs CPI's selectivity: SoftBound mode costs a multiple of
/// CPI on pointer-heavy code.
#[test]
fn softbound_costs_a_multiple_of_cpi() {
    let suite = spec_suite();
    let w = suite.iter().find(|w| w.name == "mcf").expect("exists");
    let row = overhead_row(
        w,
        2,
        &[BuildConfig::Cpi, BuildConfig::SoftBound],
        StoreKind::ArraySuperpage,
    )
    .expect("measures");
    let cpi = row.overhead(BuildConfig::Cpi).expect("measured");
    let sb = row.overhead(BuildConfig::SoftBound).expect("measured");
    assert!(
        sb > cpi.max(0.5) * 5.0,
        "SoftBound {sb:.1}% must dwarf CPI {cpi:.1}% on pointer-chasing code"
    );
}

/// Table 2's premise: "CPI requires much less instrumentation than full
/// memory safety, and CPS much less than CPI."
#[test]
fn table2_mo_ordering_over_the_suite() {
    let mut cps_total = 0.0;
    let mut cpi_total = 0.0;
    let mut sb_total = 0.0;
    for w in spec_suite() {
        let src = w.source(1);
        let cps = levee::core::build_source(&src, w.name, BuildConfig::Cps).expect("builds");
        let cpi = levee::core::build_source(&src, w.name, BuildConfig::Cpi).expect("builds");
        let sb = levee::core::build_source(&src, w.name, BuildConfig::SoftBound).expect("builds");
        assert!(
            cps.stats.mo_fraction() <= cpi.stats.mo_fraction() + 1e-9,
            "{}: MOCPS {:.3} > MOCPI {:.3}",
            w.name,
            cps.stats.mo_fraction(),
            cpi.stats.mo_fraction()
        );
        cps_total += cps.stats.mo_fraction();
        cpi_total += cpi.stats.mo_fraction();
        sb_total += sb.stats.mo_fraction();
    }
    assert!(cps_total < cpi_total && cpi_total < sb_total);
}

/// "less than 25% of functions need such additional stack frames" —
/// FNUStack stays a minority across the suite.
#[test]
fn fnustack_is_a_minority() {
    let mut unsafe_frames = 0u64;
    let mut funcs = 0u64;
    for w in spec_suite() {
        let built = levee::core::build_source(&w.source(1), w.name, BuildConfig::SafeStack)
            .expect("builds");
        unsafe_frames += built.stats.unsafe_frames;
        funcs += built.stats.funcs;
    }
    let fraction = unsafe_frames as f64 / funcs as f64;
    assert!(
        fraction < 0.45,
        "FNUStack should be a minority, got {:.0}%",
        fraction * 100.0
    );
}

/// The Appendix A model and the real pipeline agree on the CPI verdict
/// for the canonical forged-pointer program.
#[test]
fn formal_model_agrees_with_pipeline() {
    use levee::formal::{ATy, Cmd, Env, Lhs, Outcome, Rhs};
    use levee::vm::{ExitStatus, Trap};
    use levee::Session;
    use std::collections::BTreeMap;

    // Formal model: g = (f*)(int)1234; (*g)() → Abort.
    let mut env = Env::new(BTreeMap::new(), &[("g", ATy::fn_ptr())], &["f0"]);
    env.exec(&Cmd::Assign(
        Lhs::Var("g".into()),
        Rhs::Cast(ATy::fn_ptr(), Box::new(Rhs::Int(1234))),
    ));
    assert_eq!(
        env.exec(&Cmd::CallIndirect(Lhs::Var("g".into()))),
        Outcome::Abort
    );

    // Pipeline: the same program under CPI → CPI trap.
    let src = r#"
        int main() {
            void (*g)(int);
            g = (void (*)(int))1234;
            g(1);
            return 0;
        }
    "#;
    let mut session = Session::builder()
        .source(src)
        .name("forge")
        .protection(BuildConfig::Cpi)
        .build()
        .expect("builds");
    let out = session.run(b"");
    assert!(
        matches!(out.status, ExitStatus::Trapped(Trap::Cpi { .. })),
        "pipeline must also abort, got {:?}",
        out.status
    );
}
