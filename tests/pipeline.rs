//! Cross-crate integration: source → protection passes → VM, across
//! every configuration, with differential output checks — driven
//! through `levee::Session`, the embedding front door.

use levee::core::build_source;
use levee::vm::{ExitStatus, Isolation, StoreKind, VmConfig};
use levee::{BuildConfig, Session};

/// A program touching every subsystem: structs, vtables, dispatch
/// tables, heap, strings, setjmp, recursion.
const KITCHEN_SINK: &str = r#"
    struct shape;
    struct vt { long (*area)(struct shape*); };
    struct shape { struct vt* v; long w; long h; };
    long rect_area(struct shape* s) { return s->w * s->h; }
    struct vt rect = {rect_area};

    long twice(long x) { return x * 2; }
    long thrice(long x) { return x * 3; }
    long (*muls[2])(long) = {twice, thrice};

    long jb[3];

    long fact(long n) {
        if (n < 2) return 1;
        return n * fact(n - 1);
    }

    int main() {
        struct shape s;
        s.v = &rect;
        s.w = 6; s.h = 7;
        print_int(s.v->area(&s));

        long i;
        long acc = 0;
        for (i = 0; i < 8; i = i + 1) { acc = acc + muls[i & 1](i); }
        print_int(acc);

        long* heap = (long*)malloc(64);
        heap[3] = fact(6);
        print_int(heap[3]);
        free((void*)heap);

        char buf[32];
        strcpy(buf, "pipe");
        strcat(buf, "line");
        print_str(buf);

        int r = setjmp(jb);
        if (r == 0) { longjmp(jb, 9); }
        print_int(r);
        return 0;
    }
"#;

const EXPECTED: &str = "42\n72\n720\npipeline\n9";

fn sink_session(config: BuildConfig) -> Session {
    Session::builder()
        .source(KITCHEN_SINK)
        .name("sink")
        .protection(config)
        .vm_config(VmConfig::default())
        .build()
        .expect("builds")
}

#[test]
fn kitchen_sink_runs_identically_under_every_config() {
    for config in BuildConfig::all() {
        let out = sink_session(*config)
            .run_ok(b"")
            .unwrap_or_else(|e| panic!("{}: {e}", config.name()));
        assert_eq!(out.output, EXPECTED, "{} diverged", config.name());
    }
}

#[test]
fn kitchen_sink_runs_under_every_store_and_isolation() {
    // One session; every (store, isolation) pair is a reconfigure of
    // the same built module.
    let mut session = sink_session(BuildConfig::Cpi);
    for store in StoreKind::all() {
        for iso in [
            Isolation::Segmentation,
            Isolation::InfoHiding,
            Isolation::Sfi,
        ] {
            session.reconfigure(|cfg| {
                cfg.store_kind = *store;
                cfg.isolation = iso;
            });
            let out = session
                .run_ok(b"")
                .unwrap_or_else(|e| panic!("store {store:?} isolation {iso:?}: {e}"));
            assert_eq!(out.output, EXPECTED);
        }
    }
}

#[test]
fn overhead_ordering_holds_on_the_kitchen_sink() {
    let mut cycles = Vec::new();
    for config in BuildConfig::all() {
        let out = sink_session(*config).run(b"");
        cycles.push((*config, out.exec.cycles));
    }
    let get = |c: BuildConfig| cycles.iter().find(|(k, _)| *k == c).expect("ran").1;
    // The paper's cost ladder: safestack ≈ vanilla ≤ CPS ≤ CPI ≤ SoftBound.
    assert!(get(BuildConfig::Cps) <= get(BuildConfig::Cpi));
    assert!(get(BuildConfig::Cpi) <= get(BuildConfig::SoftBound));
    let ss = get(BuildConfig::SafeStack) as f64;
    let vanilla = get(BuildConfig::Vanilla) as f64;
    assert!((ss / vanilla - 1.0).abs() < 0.05, "safestack ≈ vanilla");
}

#[test]
fn instrumentation_statistics_are_reported() {
    let cpi = build_source(KITCHEN_SINK, "sink", BuildConfig::Cpi).expect("builds");
    assert!(cpi.stats.funcs >= 5);
    assert!(cpi.stats.fn_checks >= 2, "vtable + dispatch calls");
    assert!(cpi.stats.protected_ops > 0);
    assert!(cpi.stats.mo_fraction() > 0.0 && cpi.stats.mo_fraction() < 1.0);
    assert!(cpi.stats.fnustack() > 0.0 && cpi.stats.fnustack() <= 1.0);
}

#[test]
fn debug_mode_detects_regular_copy_divergence() {
    // §3.2.2 debug mode: sensitive pointers stored in both regions and
    // compared on load → corruption is *detected* instead of silently
    // ignored.
    let src = r#"
        void h(int x) { print_int(x); }
        char buf[64];
        void (*cb)(int);
        int main() {
            cb = h;
            read_input(buf, -1);
            cb(5);
            return 0;
        }
    "#;
    let mut session = Session::builder()
        .source(src)
        .name("dbg")
        .protection(BuildConfig::Cpi)
        .vm_config(VmConfig::default())
        .configure(|cfg| cfg.debug_dual_store = true)
        .build()
        .expect("builds");
    let mut payload = vec![b'A'; 64];
    payload.extend_from_slice(&0xdead_beefu64.to_le_bytes());
    let out = session.run(&payload);
    assert!(
        matches!(
            out.status,
            ExitStatus::Trapped(levee::vm::Trap::Cpi {
                kind: levee::vm::CpiViolationKind::DebugMismatch,
                ..
            })
        ),
        "debug mode must flag the mismatch, got {:?}",
        out.status
    );

    // Default mode: silent prevention (the call still goes to h) — the
    // same session, reconfigured out of debug mode.
    session.reconfigure(|cfg| cfg.debug_dual_store = false);
    let out = session.run(&payload);
    assert_eq!(out.status, ExitStatus::Exited(0));
    assert_eq!(out.output, "5");
}

#[test]
fn isolation_ablation_cpi_depends_on_isolation() {
    // With isolation off, the attacker can reach the safe region —
    // the guarantee evaporates (§3.2.3 made falsifiable).
    let src = r#"int main() { print_int(1); return 0; }"#;
    let mut session = Session::builder()
        .source(src)
        .name("abl")
        .protection(BuildConfig::Cpi)
        .vm_config(VmConfig::default())
        .configure(|cfg| cfg.isolation = Isolation::None)
        .build()
        .expect("builds");
    let safe_stack_slot = session.layout().safe_stack_top() - 8;
    assert!(
        session.attacker_write(safe_stack_slot, &[0xff; 8]).is_ok(),
        "without isolation the safe region is just memory"
    );
    for iso in [
        Isolation::Segmentation,
        Isolation::Sfi,
        Isolation::InfoHiding,
    ] {
        session.reconfigure(|cfg| cfg.isolation = iso);
        let slot = session.layout().safe_stack_top() - 8;
        assert!(session.attacker_write(slot, &[0xff; 8]).is_err(), "{iso:?}");
    }
}
