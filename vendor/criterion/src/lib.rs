//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal wall-clock bench harness with the same surface the benches
//! use: `Criterion::benchmark_group`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. No statistics — it times a fixed number of
//! iterations and prints ns/iter.

use std::fmt::Display;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `f`: a short warmup, then a fixed measured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let iters = 20u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        println!(
            "{}/{:<40} {:>12.0} ns/iter",
            self.name, id.id, b.nanos_per_iter
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// Declares a bench group function calling each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
