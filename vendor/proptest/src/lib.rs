//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, deterministic property-testing harness exposing the subset
//! of the proptest API the test suites use: [`strategy::Strategy`] with
//! `prop_map`, range/tuple/`Just`/`any`/`select` strategies, weighted
//! [`crate::prop_oneof!`], [`collection::vec`], and the [`proptest!`] macro.
//!
//! Differences from real proptest, on purpose:
//!
//! * cases are generated from a *deterministic* per-test seed (derived
//!   from the test's module path), so CI failures always reproduce;
//! * there is no shrinking — a failing case panics with its inputs via
//!   the normal assertion message instead.

pub mod rng {
    /// Deterministic SplitMix64 stream used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one `(test, case)` pair: the same test always
        /// replays the same cases.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// The next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A value in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                ((self.next_u64() as u128 * n as u128) >> 64) as u64
            }
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use crate::rng::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn pick(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn pick(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn pick(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.pick(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn pick(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn pick(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.pick(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    trait DynStrategy<V> {
        fn pick_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn pick_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.pick(rng)
        }
    }

    /// A reference-counted type-erased strategy.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            self.0.pick_dyn(rng)
        }
    }

    /// Weighted choice between strategies of a common value type.
    #[derive(Clone)]
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    /// Builds a [`Union`]; used by the [`crate::prop_oneof!`] macro.
    pub fn union<V>(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn pick(&self, rng: &mut TestRng) -> V {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.pick(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("weights sum to total")
        }
    }
}

pub mod arbitrary {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy yielding arbitrary values of `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Strategy yielding one of a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// `proptest::sample::select(values)`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select() needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn pick(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to generate per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assertion inside a property (plain `assert!` here — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body
/// runs for `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::rng::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::strategy::Strategy::pick(&$strat, &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = crate::rng::TestRng::for_case("self", 0);
        let s = (0u64..10, 5i64..6).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let v = Strategy::pick(&s, &mut rng);
            assert!((5..15).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_shape() {
        let mut rng = crate::rng::TestRng::for_case("self2", 1);
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..300 {
            seen[Strategy::pick(&s, &mut rng) as usize] += 1;
        }
        assert!(seen[1] > 0 && seen[2] > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_cases(v in crate::collection::vec(0u64..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| *x < 5));
        }
    }
}
