//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors a
//! minimal, API-compatible subset of rand 0.8: [`Rng`], [`SeedableRng`],
//! and [`rngs::StdRng`]. Randomness is a deterministic SplitMix64
//! stream, which is exactly what the VM wants anyway — every layout
//! randomization and cookie draw must be reproducible from the seed.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from a raw word stream (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (use as `rng.gen::<u64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        let width = range.end - range.start;
        assert!(width > 0, "gen_range on empty range");
        // Multiply-shift reduction: unbiased enough for simulation use.
        range.start + (((self.next_u64() as u128 * width as u128) >> 64) as u64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
